(* The scenario fuzzer and invariant checker, tested three ways: the
   scenario grammar round-trips; the checker's individual invariants fire
   on synthetic probe streams; and end-to-end, a small campaign is green
   while each planted protocol bug is caught and its emitted repro file
   reproduces the failure deterministically.

   Seeded from NINJA_TEST_SEED (default 1) like the fault suite, so the
   CI seed matrix covers this suite too. *)

open Ninja_engine
open Ninja_hardware
open Ninja_vmm
open Ninja_check

let env_seed =
  match Sys.getenv_opt "NINJA_TEST_SEED" with
  | Some s -> ( try Int64.of_string s with Failure _ -> 1L)
  | None -> 1L

let salted salt = Int64.add env_seed (Int64.of_int salt)

(* ------------------------------------------------------------------ *)
(* Scenario grammar *)

let scenario_roundtrip_prop =
  QCheck.Test.make ~name:"scenario text form round-trips" ~count:200 QCheck.small_int
    (fun salt ->
      let prng = Prng.create ~seed:(salted salt) in
      let sc = Scenario.gen prng in
      let sc = if salt mod 3 = 0 then { sc with Scenario.plant = Some "skip-fence" } else sc in
      match Scenario.of_string (Scenario.to_string sc) with
      | Ok sc' -> sc' = sc
      | Error e -> QCheck.Test.fail_reportf "did not parse back: %s" e)

let generated_scenarios_validate_prop =
  QCheck.Test.make ~name:"generated scenarios validate; shrinks stay valid" ~count:200
    QCheck.small_int (fun salt ->
      let prng = Prng.create ~seed:(salted salt) in
      let sc = Scenario.gen prng in
      (match Scenario.validate sc with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "generated scenario invalid: %s" e);
      List.for_all
        (fun c ->
          match Scenario.validate c with
          | Ok () -> true
          | Error e -> QCheck.Test.fail_reportf "shrink candidate invalid: %s" e)
        (Scenario.shrink sc))

let test_scenario_parse_errors () =
  List.iter
    (fun text ->
      match Scenario.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected %S to be rejected" text)
    [
      "frobnicate=1";
      "vms=banana";
      "trigger=warp";
      "trigger=consolidate:0";
      "strategy=psychic";
      "fault=frobnicate";
      "vms=3\nib=2";
      (* vms > ib *)
      "until=3\ntrigger_at=5";
      "uplink_gbps=-2";
      "traffic=bogus";
      "traffic=skewed:factor=0.5";
    ]

let test_scenario_parse_comments_and_defaults () =
  let text = "# a comment\n\nseed=9\n  vms=2  \nib=2\neth=3\nfault=agent-crash@vm0\n" in
  match Scenario.of_string text with
  | Error e -> Alcotest.fail e
  | Ok sc ->
    Alcotest.(check int64) "seed" 9L sc.Scenario.seed;
    Alcotest.(check int) "vms" 2 sc.Scenario.vms;
    Alcotest.(check (list string)) "faults" [ "agent-crash@vm0" ] sc.Scenario.faults;
    Alcotest.(check int) "procs defaulted" 1 sc.Scenario.procs

let test_generate_deterministic () =
  let a = Fuzz.generate ~seed:env_seed ~n:5 in
  let b = Fuzz.generate ~seed:env_seed ~n:5 in
  Alcotest.(check bool) "same stream" true (a = b);
  Alcotest.(check int) "count" 5 (List.length a);
  let c = Fuzz.generate ~seed:(Int64.add env_seed 1L) ~n:5 in
  Alcotest.(check bool) "different seed, different stream" true (a <> c)

(* ------------------------------------------------------------------ *)
(* Strategy registry properties *)

module Plan = Ninja_planner.Plan
module Solver = Ninja_planner.Solver
module Estimator = Ninja_planner.Estimator
module Executor = Ninja_planner.Executor
module Fabric = Ninja_flownet.Fabric
module Traffic = Ninja_workloads.Traffic

(* Kahn layering of the solved plan: the waves the executor could run
   concurrently at the earliest. Two link-sharing steps only share a
   layer if the solver judged them safe to overlap. *)
let layers plan =
  let finished = Hashtbl.create 16 in
  let rec go acc remaining =
    if remaining = [] then List.rev acc
    else begin
      let ready, rest =
        List.partition
          (fun s ->
            List.for_all
              (fun (d : Plan.step) -> Hashtbl.mem finished d.Plan.id)
              (Plan.deps_of plan s))
          remaining
      in
      if ready = [] then QCheck.Test.fail_report "no ready step: plan is cyclic";
      List.iter (fun (s : Plan.step) -> Hashtbl.add finished s.Plan.id ()) ready;
      go (ready :: acc) rest
    end
  in
  go [] (Plan.steps plan)

(* Every registered strategy — present and future — must honour the
   planner's safety contract on arbitrary evacuation mixes, under both
   migration modes: acyclic output, no concurrent layer oversubscribing
   a fabric link, no VM silently re-aimed across the IB/Ethernet
   boundary (the PR-4 reroute bug family, which the swap solver could
   reintroduce wholesale), and no postcopy step inside a swap-staged
   cycle — a staged hop commits onto a scratch node, so the executor
   must demote it to precopy whatever mode the caller asked for. *)
let strategies_safe_prop =
  QCheck.Test.make
    ~name:"registered strategies x modes: acyclic, capacity-safe, staged hops precopy"
    ~count:60 QCheck.small_int (fun salt ->
      let prng = Prng.create ~seed:(salted (1000 + salt)) in
      let n = 2 + Prng.int prng 3 in
      let sim = Sim.create ~seed:(salted salt) () in
      let cluster =
        Cluster.create sim ~spec:(Spec.make ~ib_nodes:(2 * n) ~eth_nodes:n ()) ()
      in
      Cluster.set_inter_rack cluster ~rack_a:0 ~rack_b:1
        ~capacity:(Units.gbps (5.0 *. float_of_int (1 + Prng.int prng 4)))
        ~latency:(Time.us 50);
      let vms =
        List.init n (fun i ->
            Vm.create cluster
              ~name:(Printf.sprintf "vm%d" i)
              ~host:(Cluster.find_node cluster (Printf.sprintf "ib%02d" i))
              ~vcpus:2
              ~mem_bytes:(Units.gb (2.0 +. Prng.float prng 4.0))
              ())
      in
      (* Distinct free destinations, randomly IB or Ethernet, so the
         fabric-class claim is non-trivial for the swap strategy. *)
      let assignment =
        List.mapi
          (fun i vm ->
            let name =
              if Prng.bool prng then Printf.sprintf "ib%02d" (n + i)
              else Printf.sprintf "eth%02d" i
            in
            (vm, Cluster.find_node cluster name))
          vms
      in
      let dst_of vm = List.assq vm assignment in
      let traffic =
        Traffic.matrix prng (Traffic.gen prng) ~vms:(List.map Vm.name vms)
      in
      List.for_all
        (fun strategy ->
          let plan = Plan.of_assignment cluster ~vms ~dst_of () in
          let solved = Solver.solve strategy cluster ~traffic plan in
          if not (Plan.is_acyclic solved) then
            QCheck.Test.fail_reportf "%s: cyclic plan" (Solver.name strategy);
          List.iter
            (fun layer ->
              let usage = Hashtbl.create 8 in
              List.iter
                (fun step ->
                  let rate = (Estimator.estimate cluster step).Estimator.rate in
                  List.iter
                    (fun link ->
                      let id = Fabric.link_id link in
                      let prev =
                        Option.value (Hashtbl.find_opt usage id) ~default:(link, 0.0)
                      in
                      Hashtbl.replace usage id (link, snd prev +. rate))
                    (Estimator.route cluster step))
                layer;
              Hashtbl.iter
                (fun _ (link, used) ->
                  if used > Fabric.link_capacity link +. 1e-3 then
                    QCheck.Test.fail_reportf "%s: link %s oversubscribed (%.4g > %.4g)"
                      (Solver.name strategy) (Fabric.link_name link) used
                      (Fabric.link_capacity link))
                usage)
            (layers solved);
          List.iter
            (fun (s : Plan.step) ->
              match s.Plan.kind with
              | Plan.Direct | Plan.Stage_in ->
                if Node.has_ib s.Plan.dst <> Node.has_ib (dst_of s.Plan.vm) then
                  QCheck.Test.fail_reportf "%s: %s crossed the fabric-class boundary"
                    (Solver.name strategy) (Vm.name s.Plan.vm)
              | Plan.Stage_out -> ())
            (Plan.steps solved);
          List.iter
            (fun mode ->
              List.iter
                (fun (s : Plan.step) ->
                  let effective = Executor.step_mode mode s in
                  match s.Plan.kind with
                  | Plan.Stage_out | Plan.Stage_in ->
                    if effective <> Migration.Precopy then
                      QCheck.Test.fail_reportf
                        "%s: staged hop of %s would run %s under requested %s"
                        (Solver.name strategy) (Vm.name s.Plan.vm)
                        (Migration.mode_name effective) (Migration.mode_name mode)
                  | Plan.Direct ->
                    if effective <> mode then
                      QCheck.Test.fail_reportf
                        "%s: direct step of %s ignored requested mode %s"
                        (Solver.name strategy) (Vm.name s.Plan.vm)
                        (Migration.mode_name mode))
                (Plan.steps solved))
            [ Migration.Precopy; Migration.Postcopy ];
          true)
        (Solver.all ()))

(* The evacuation mixes above rarely stage; pin the demotion on a plan
   that provably does — a two-VM destination swap with one free staging
   node yields a Stage_out/Stage_in chain, every hop of which must run
   precopy even when the request is postcopy. *)
let test_staged_swap_demotes_postcopy () =
  let sim = Sim.create ~seed:env_seed () in
  let cluster = Cluster.create sim ~spec:(Spec.make ~ib_nodes:3 ~eth_nodes:0 ()) () in
  let host i = Cluster.find_node cluster (Printf.sprintf "ib%02d" i) in
  let a = Vm.create cluster ~name:"vma" ~host:(host 0) ~vcpus:2 ~mem_bytes:(Units.gb 2.0) () in
  let b = Vm.create cluster ~name:"vmb" ~host:(host 1) ~vcpus:2 ~mem_bytes:(Units.gb 2.0) () in
  let dst_of vm = if vm == a then host 1 else host 0 in
  let plan =
    Plan.of_assignment cluster ~vms:[ a; b ] ~dst_of ~staging:[ host 2 ] ()
  in
  let staged =
    List.filter (fun (s : Plan.step) -> s.Plan.kind <> Plan.Direct) (Plan.steps plan)
  in
  Alcotest.(check bool) "swap produced staged hops" true (staged <> []);
  List.iter
    (fun (s : Plan.step) ->
      Alcotest.(check string)
        (Printf.sprintf "step %d runs precopy" s.Plan.id)
        "precopy"
        (Migration.mode_name (Executor.step_mode Migration.Postcopy s)))
    staged;
  List.iter
    (fun (s : Plan.step) ->
      if s.Plan.kind = Plan.Direct then
        Alcotest.(check string)
          (Printf.sprintf "direct step %d honours postcopy" s.Plan.id)
          "postcopy"
          (Migration.mode_name (Executor.step_mode Migration.Postcopy s)))
    (Plan.steps plan)

(* ------------------------------------------------------------------ *)
(* Checker invariants on synthetic probe streams *)

let fresh_cluster () =
  let sim = Sim.create ~seed:env_seed () in
  let cluster = Cluster.create sim ~spec:(Spec.make ~ib_nodes:2 ~eth_nodes:2 ()) () in
  (sim, cluster)

let violation_names checker =
  List.map (fun v -> v.Checker.invariant) (Checker.violations checker)

let test_checker_fence_pairing () =
  let _sim, cluster = fresh_cluster () in
  let checker = Checker.install cluster ~vms:[] in
  let probes = Cluster.probes cluster in
  Probe.emit probes ~topic:"fence" ~action:"release" ();
  Probe.emit probes ~topic:"fence" ~action:"enter" ~info:[ ("vms", "vm0") ] ();
  Probe.emit probes ~topic:"fence" ~action:"enter" ~info:[ ("vms", "vm0") ] ();
  Checker.check_finish checker;
  Alcotest.(check (list string)) "release w/o enter, double enter, held at end"
    [ "fence-pairing"; "fence-pairing"; "fence-pairing" ]
    (violation_names checker)

let test_checker_plan_and_permits () =
  let _sim, cluster = fresh_cluster () in
  let checker = Checker.install cluster ~vms:[] in
  let probes = Cluster.probes cluster in
  Probe.emit probes ~topic:"plan" ~action:"built"
    ~info:[ ("steps", "3"); ("deps", "3"); ("acyclic", "false") ]
    ();
  Probe.emit probes ~topic:"executor" ~action:"report"
    ~info:[ ("steps", "3"); ("failures", "0"); ("retries", "0"); ("permits-leaked", "2") ]
    ();
  Alcotest.(check (list string)) "cyclic plan and leaked permits flagged"
    [ "plan-acyclic"; "permit-leak" ]
    (violation_names checker);
  Alcotest.(check int) "events counted" 2 (Checker.events_seen checker)

let test_checker_attach_balance_and_fence_gate () =
  let _sim, cluster = fresh_cluster () in
  let vm =
    Vm.create cluster ~name:"vm0"
      ~host:(Cluster.find_node cluster "ib00")
      ~vcpus:2 ~mem_bytes:(Units.gb 4.0) ()
  in
  let checker = Checker.install cluster ~vms:[ vm ] in
  let probes = Cluster.probes cluster in
  (* Unwatched subjects are ignored entirely. *)
  Probe.emit probes ~topic:"vm" ~action:"device-del" ~subject:"other"
    ~info:[ ("tag", "x") ] ();
  (* virtio0 was attached at create time, before install: it is part of
     the baseline, so detaching it once is balanced... *)
  Probe.emit probes ~topic:"vm" ~action:"device-del" ~subject:"vm0"
    ~info:[ ("tag", "virtio0") ] ();
  (* ...but a second detach is not, and neither is a duplicate attach. *)
  Probe.emit probes ~topic:"vm" ~action:"device-del" ~subject:"vm0"
    ~info:[ ("tag", "virtio0") ] ();
  Probe.emit probes ~topic:"vm" ~action:"device-add" ~subject:"vm0"
    ~info:[ ("tag", "vf0"); ("bypass", "true") ] ();
  Probe.emit probes ~topic:"vm" ~action:"device-add" ~subject:"vm0"
    ~info:[ ("tag", "vf0"); ("bypass", "true") ] ();
  (* A migration outside any fence, with the bypass device attached. *)
  Probe.emit probes ~topic:"vm" ~action:"migrated" ~subject:"vm0"
    ~info:[ ("src", "ib00"); ("dst", "eth00"); ("bypass", "true") ]
    ();
  Alcotest.(check (list string)) "unbalanced hotplug and unfenced bypass migration"
    [ "attach-balance"; "attach-balance"; "fence-before-migrate"; "bypass-migrate" ]
    (violation_names checker)

let test_checker_excuses_giveup () =
  let _sim, cluster = fresh_cluster () in
  let vm =
    Vm.create cluster ~name:"vm0"
      ~host:(Cluster.find_node cluster "ib00")
      ~vcpus:2 ~mem_bytes:(Units.gb 4.0) ()
  in
  let checker = Checker.install cluster ~vms:[ vm ] in
  let probes = Cluster.probes cluster in
  Probe.emit probes ~topic:"migrate" ~action:"start" ~info:[ ("vm0", "eth01") ] ();
  (* vm0 is on ib00, not its claimed origin eth01 — but the rollback gave
     up on it, which excuses the mismatch. *)
  Probe.emit probes ~topic:"migrate" ~action:"giveup" ~subject:"vm0"
    ~info:[ ("phase", "rollback-return") ] ();
  Probe.emit probes ~topic:"migrate" ~action:"rollback"
    ~info:[ ("reason", "test") ] ();
  Alcotest.(check (list string)) "giveup excuses the restore check" []
    (violation_names checker);
  Alcotest.(check bool) "vm0 is excused" true (Checker.excused checker "vm0");
  (* A fresh migration clears the excuse; now the mismatch counts. *)
  Probe.emit probes ~topic:"migrate" ~action:"start" ~info:[ ("vm0", "eth01") ] ();
  Probe.emit probes ~topic:"migrate" ~action:"rollback"
    ~info:[ ("reason", "test") ] ();
  Alcotest.(check (list string)) "fresh transaction re-arms the check"
    [ "rollback-restore" ] (violation_names checker)

(* ------------------------------------------------------------------ *)
(* Probe bus basics (the engine hook everything above rides on) *)

let test_probe_idle_is_free () =
  let sim = Sim.create ~seed:env_seed () in
  let probes = Probe.create sim in
  Probe.emit probes ~topic:"x" ~action:"y" ();
  Alcotest.(check bool) "inactive" false (Probe.active probes);
  Alcotest.(check int) "nothing delivered" 0 (Probe.emitted probes);
  let seen = ref [] in
  Probe.subscribe probes (fun e -> seen := ("a", e.Probe.action) :: !seen);
  Probe.subscribe probes (fun e -> seen := ("b", e.Probe.action) :: !seen);
  Probe.emit probes ~topic:"x" ~action:"z" ~info:[ ("k", "v") ] ();
  Alcotest.(check bool) "active" true (Probe.active probes);
  Alcotest.(check int) "one delivery" 1 (Probe.emitted probes);
  Alcotest.(check (list (pair string string))) "subscription order"
    [ ("a", "z"); ("b", "z") ]
    (List.rev !seen)

let test_probe_subscription_scoping () =
  let sim = Sim.create ~seed:env_seed () in
  let probes = Probe.create sim in
  let seen = ref 0 in
  (* attach/detach bracket exactly the events in between; detach is
     idempotent and returns the bus to zero-cost idle. *)
  let sub = Probe.attach probes (fun _ -> incr seen) in
  Probe.emit probes ~topic:"x" ~action:"a" ();
  Probe.detach probes sub;
  Probe.detach probes sub;
  Probe.emit probes ~topic:"x" ~action:"b" ();
  Alcotest.(check int) "only the bracketed event" 1 !seen;
  Alcotest.(check bool) "idle again" false (Probe.active probes);
  (* with_subscriber detaches even when the body raises. *)
  (try
     Probe.with_subscriber probes
       (fun _ -> incr seen)
       (fun () ->
         Probe.emit probes ~topic:"x" ~action:"c" ();
         failwith "boom")
   with Failure _ -> ());
  Probe.emit probes ~topic:"x" ~action:"d" ();
  Alcotest.(check int) "detached on exception" 2 !seen;
  Alcotest.(check bool) "idle after the body" false (Probe.active probes)

(* ------------------------------------------------------------------ *)
(* End-to-end: green campaign, planted bugs, replayable repros *)

let small_ctx () = Run_ctx.make ~seed:env_seed ()

let test_campaign_green () =
  let summary = Fuzz.campaign (small_ctx ()) ~n:8 ~shrink:false () in
  (match summary.Fuzz.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "expected a green campaign, got: %s"
      (Format.asprintf "%a" Runner.pp_result
         (Option.value f.Fuzz.shrunk ~default:f.Fuzz.result)));
  Alcotest.(check int) "all passed" 8 summary.Fuzz.passed;
  Alcotest.(check bool) "probes observed" true (summary.Fuzz.events > 0)

let test_campaign_parallel_matches_serial () =
  let serial = Fuzz.campaign (small_ctx ()) ~n:6 ~shrink:false () in
  Pool.with_pool ~size:3 (fun pool ->
      let ctx = Run_ctx.make ~seed:env_seed ~pool () in
      let parallel = Fuzz.campaign ctx ~n:6 ~shrink:false () in
      Alcotest.(check bool) "identical summaries" true (serial = parallel))

let test_runner_deterministic () =
  let prng = Prng.create ~seed:env_seed in
  let sc = Scenario.gen prng in
  let a = Runner.run sc and b = Runner.run sc in
  Alcotest.(check bool) "same outcome" true (a = b)

let violated_invariants (r : Runner.result) =
  match r.Runner.outcome with
  | Runner.Violated vs -> List.map (fun v -> v.Checker.invariant) vs
  | _ -> []

let test_plant_skip_fence_caught () =
  let summary = Fuzz.campaign (small_ctx ()) ~n:2 ~plant:"skip-fence" ~shrink:false () in
  Alcotest.(check int) "every scenario fails" 2 (List.length summary.Fuzz.failures);
  List.iter
    (fun f ->
      Alcotest.(check bool) "fence-before-migrate flagged" true
        (List.mem "fence-before-migrate" (violated_invariants f.Fuzz.result)))
    summary.Fuzz.failures

let test_plant_skip_rollback_caught_and_replays () =
  let summary =
    Fuzz.campaign (small_ctx ()) ~n:1 ~plant:"skip-rollback" ~shrink:true ()
  in
  match summary.Fuzz.failures with
  | [ f ] ->
    Alcotest.(check bool) "rollback-restore flagged" true
      (List.mem "rollback-restore" (violated_invariants f.Fuzz.result));
    (* The emitted repro file reproduces the failure deterministically. *)
    let repro = Fuzz.repro_of f in
    (match Scenario.of_string repro with
    | Error e -> Alcotest.failf "repro file does not parse: %s" e
    | Ok sc ->
      let r = Runner.run sc in
      Alcotest.(check bool) "replay fails again" true (Runner.failed r);
      Alcotest.(check bool) "replay finds the same invariant" true
        (List.mem "rollback-restore" (violated_invariants r)
        || List.mem "fence-before-migrate" (violated_invariants r)))
  | fs -> Alcotest.failf "expected exactly one failure, got %d" (List.length fs)

let test_shrink_result_minimises () =
  let prng = Prng.create ~seed:env_seed in
  let sc = { (Scenario.gen prng) with Scenario.plant = Some "skip-fence" } in
  let r = Runner.run sc in
  Alcotest.(check bool) "planted run fails" true (Runner.failed r);
  match Fuzz.shrink_result ~budget:40 r with
  | None -> () (* already minimal *)
  | Some smaller ->
    Alcotest.(check bool) "shrunk run still fails" true (Runner.failed smaller);
    Alcotest.(check bool) "plant preserved" true
      (smaller.Runner.scenario.Scenario.plant = Some "skip-fence")

(* Regressions for bugs the fuzzer actually found, pinned as the repro
   files it emitted. *)

let run_repro text =
  match Scenario.of_string text with
  | Error e -> Alcotest.failf "repro does not parse: %s" e
  | Ok sc ->
    let r = Runner.run sc in
    if Runner.failed r then
      Alcotest.failf "repro fails: %s" (Format.asprintf "%a" Runner.pp_result r)

let collective_exit_repro =
  "seed=-7474594204390484452\n\
   ib=5\n\
   eth=3\n\
   vms=3\n\
   procs=1\n\
   mem_gb=6.2994671907966824\n\
   compute=0.28298897206788182\n\
   msg_bytes=139048870.1486803\n\
   until=66.469660177778223\n\
   strategy=grouped\n\
   trigger=consolidate:2\n\
   trigger_at=8.5663234931688166\n"

let reroute_overcommit_repro =
  "seed=1204786352294408077\n\
   ib=6\n\
   eth=6\n\
   vms=4\n\
   procs=1\n\
   mem_gb=13.24583538962561\n\
   compute=0.1\n\
   msg_bytes=1000000\n\
   until=40\n\
   strategy=grouped\n\
   trigger=consolidate:2\n\
   trigger_at=3.7191656196105867\n\
   fault=node-death@eth01:n=1\n"

let reroute_cross_fabric_repro =
  "seed=4156674000378942360\n\
   ib=2\n\
   eth=3\n\
   vms=2\n\
   procs=1\n\
   mem_gb=4\n\
   compute=0.10000000000000001\n\
   msg_bytes=1000000\n\
   until=40\n\
   strategy=sequential\n\
   trigger=drain\n\
   trigger_at=8.6213324926064843\n\
   fault=node-death@eth00:n=1\n"

(* The same scenario with every migration run postcopy instead. The
   three PR-4 repros stress exactly the paths whose failure semantics
   changed with postcopy — consolidation under contention skew, reroute
   after a destination death, cross-fabric reroute — so each must also
   hold when switchovers commit early and a displaced VM may no longer
   be rerouted (the reroute path refuses a VM whose switchover already
   committed rather than splitting its memory across hosts). *)
let postcopy_variant text = text ^ "mode=postcopy\n"

let test_regression_collective_exit_race () =
  (* Found by `check -n 1000 --seed 1337`: ranks decided the workload's
     exit on their local clocks, so CPU-contention skew after a
     consolidation stranded laggards inside an allreduce (Sim.Deadlock).
     The workload now broadcasts rank 0's verdict. *)
  run_repro collective_exit_repro

let test_regression_reroute_overcommit () =
  (* Found by `check -n 1000 --seed 7` once the host-overcommit invariant
     landed: when a consolidation destination died, the scheduler's
     reroute only looked at current placement, so every displaced VM was
     sent to the first node that merely looked empty — 4 VMs * 14 GB on a
     51.5 GB host. The reroute now counts in-flight destinations and
     checks memory and the vms_per_host cap. *)
  run_repro reroute_overcommit_repro

let test_regression_reroute_cross_fabric () =
  (* Found by `check -n 1000 --seed 1` once the reroute gained capacity
     checks: a drain's Ethernet destination died and the reroute legally
     picked an IB node with room — but [Ninja.migrate]'s device plan was
     computed for the Ethernet destination, so the VM landed on IB with
     no HCA. Reroutes now stay in the planned destination's interconnect
     class. *)
  run_repro reroute_cross_fabric_repro

let test_regression_collective_exit_race_postcopy () =
  run_repro (postcopy_variant collective_exit_repro)

let test_regression_reroute_overcommit_postcopy () =
  run_repro (postcopy_variant reroute_overcommit_repro)

let test_regression_reroute_cross_fabric_postcopy () =
  run_repro (postcopy_variant reroute_cross_fabric_repro)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "ninja_check"
    [
      ( "scenario",
        Alcotest.test_case "parse errors" `Quick test_scenario_parse_errors
        :: Alcotest.test_case "comments and defaults" `Quick
             test_scenario_parse_comments_and_defaults
        :: Alcotest.test_case "generation is deterministic" `Quick
             test_generate_deterministic
        :: qsuite [ scenario_roundtrip_prop; generated_scenarios_validate_prop ] );
      ( "strategies",
        qsuite [ strategies_safe_prop ]
        @ [
            Alcotest.test_case "staged swap hops are demoted to precopy" `Quick
              test_staged_swap_demotes_postcopy;
          ] );
      ( "checker",
        [
          Alcotest.test_case "fence pairing" `Quick test_checker_fence_pairing;
          Alcotest.test_case "plan acyclicity and permit balance" `Quick
            test_checker_plan_and_permits;
          Alcotest.test_case "attach balance and fence gate" `Quick
            test_checker_attach_balance_and_fence_gate;
          Alcotest.test_case "rollback giveup is excused" `Quick
            test_checker_excuses_giveup;
        ] );
      ( "probe",
        [
          Alcotest.test_case "idle bus is free; delivery in order" `Quick
            test_probe_idle_is_free;
          Alcotest.test_case "attach/detach/with_subscriber scoping" `Quick
            test_probe_subscription_scoping;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "small campaign is green" `Quick test_campaign_green;
          Alcotest.test_case "parallel campaign matches serial" `Quick
            test_campaign_parallel_matches_serial;
          Alcotest.test_case "runner is deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "planted skip-fence is caught" `Quick
            test_plant_skip_fence_caught;
          Alcotest.test_case "planted skip-rollback is caught and replays" `Quick
            test_plant_skip_rollback_caught_and_replays;
          Alcotest.test_case "failures shrink to smaller failures" `Quick
            test_shrink_result_minimises;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "collective exit race (fuzzer-found)" `Quick
            test_regression_collective_exit_race;
          Alcotest.test_case "reroute overcommit (fuzzer-found)" `Quick
            test_regression_reroute_overcommit;
          Alcotest.test_case "reroute cross-fabric (fuzzer-found)" `Quick
            test_regression_reroute_cross_fabric;
          Alcotest.test_case "collective exit race, postcopy" `Quick
            test_regression_collective_exit_race_postcopy;
          Alcotest.test_case "reroute overcommit, postcopy" `Quick
            test_regression_reroute_overcommit_postcopy;
          Alcotest.test_case "reroute cross-fabric, postcopy" `Quick
            test_regression_reroute_cross_fabric_postcopy;
        ] );
    ]
