(* Telemetry subsystem tests: the span scope builds well-formed local
   trees and mirrors them onto the probe bus; the recorder reassembles
   identical trees and derives the protocol metrics; the exporters render
   valid Chrome trace-event fragments; and — the load-bearing property —
   the breakdown re-derived from a bus-reconstructed migration root is
   exactly the one [Ninja.migrate] returns, fault-free and rolled-back
   alike. A qcheck property runs fuzz scenarios with a recorder attached
   and asserts every reconstructed tree is sound. *)

open Ninja_engine
open Ninja_faults
open Ninja_hardware
open Ninja_mpi
open Ninja_metrics
open Ninja_core
open Ninja_check
open Ninja_telemetry

let env_seed =
  match Sys.getenv_opt "NINJA_TEST_SEED" with
  | Some s -> ( try Int64.of_string s with Failure _ -> 1L)
  | None -> 1L

let salted salt = Int64.add env_seed (Int64.of_int salt)

let sec = Time.to_sec_f

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let count_substring hay needle =
  let ln = String.length needle in
  let rec go i acc =
    if i + ln > String.length hay then acc
    else if String.sub hay i ln = needle then go (i + ln) (acc + 1)
    else go (i + 1) acc
  in
  if ln = 0 then 0 else go 0 0

let check_time msg expected actual =
  Alcotest.(check int64) msg (Time.to_ns expected) (Time.to_ns actual)

(* Structural equality of two span trees, field by field, with a path in
   every failure message. *)
let rec check_same_tree path (a : Span.t) (b : Span.t) =
  Alcotest.(check string) (path ^ ": name") a.Span.name b.Span.name;
  Alcotest.(check string) (path ^ ": cat") a.Span.cat b.Span.cat;
  Alcotest.(check string) (path ^ ": proc") a.Span.proc b.Span.proc;
  Alcotest.(check string) (path ^ ": thread") a.Span.thread b.Span.thread;
  check_time (path ^ ": start") a.Span.start b.Span.start;
  Alcotest.(check (option int64))
    (path ^ ": stop")
    (Option.map Time.to_ns a.Span.stop)
    (Option.map Time.to_ns b.Span.stop);
  Alcotest.(check (list (pair string string))) (path ^ ": args") a.Span.args b.Span.args;
  let ca = Span.children a and cb = Span.children b in
  Alcotest.(check int) (path ^ ": child count") (List.length ca) (List.length cb);
  List.iter2
    (fun x y -> check_same_tree (path ^ "/" ^ x.Span.name) x y)
    ca cb

let breakdown_fields (b : Breakdown.t) =
  [
    ("coordination", b.Breakdown.coordination);
    ("detach", b.Breakdown.detach);
    ("migration", b.Breakdown.migration);
    ("attach", b.Breakdown.attach);
    ("linkup", b.Breakdown.linkup);
    ("retry", b.Breakdown.retry);
    ("total", b.Breakdown.total);
  ]

let check_breakdown_eq msg a b =
  List.iter2
    (fun (f, x) (_, y) ->
      Alcotest.(check int64) (Printf.sprintf "%s: %s" msg f) (Time.to_ns x) (Time.to_ns y))
    (breakdown_fields a) (breakdown_fields b)

(* A finished span for hand-built trees. *)
let mk ?(proc = "proc") ?(thread = "thr") ?(args = []) name cat start stop =
  let s =
    Span.create ~name ~cat ~proc ~thread ~start:(Time.of_sec_f start) ~args ()
  in
  Span.finish s ~at:(Time.of_sec_f stop) ();
  s

(* ------------------------------------------------------------------ *)
(* Span scope: local trees *)

let test_scope_builds_tree () =
  let sim = Sim.create ~seed:env_seed () in
  let sc = Span.scope ~sim ~proc:"ninja" ~thread:"migration" () in
  let root_ref = ref None in
  Sim.spawn sim (fun () ->
      let root = Span.enter sc ~name:"root" ~cat:"migration" () in
      root_ref := Some root;
      Sim.sleep (Time.sec 1);
      let a = Span.enter sc ~name:"a" ~cat:"phase" ~args:[ ("k", "v") ] () in
      Sim.sleep (Time.sec 2);
      Span.exit_ sc a;
      (* Retroactive interval, known only after the fact. *)
      ignore (Span.note sc ~name:"n" ~cat:"retry" ~start:(Time.sec 1) ());
      let b = Span.enter sc ~name:"b" ~cat:"phase" () in
      let _c = Span.enter sc ~name:"c" ~cat:"retry" () in
      Sim.sleep (Time.sec 1);
      (* Closing [b] unwinds past the still-open [c]. *)
      Span.exit_ sc b;
      Span.exit_ sc root);
  Sim.run sim;
  let root = Option.get !root_ref in
  Alcotest.(check int) "single root" 1 (List.length (Span.roots sc));
  Alcotest.(check (list string)) "well-formed" [] (Span.well_formed root);
  Alcotest.(check (list string)) "children in order" [ "a"; "n"; "b" ]
    (List.map (fun (s : Span.t) -> s.Span.name) (Span.children root));
  check_time "root duration" (Time.sec 4) (Span.duration root);
  let child name = Option.get (Span.find_child root name) in
  check_time "a duration" (Time.sec 2) (Span.duration (child "a"));
  check_time "note spans 1..3" (Time.sec 2) (Span.duration (child "n"));
  check_time "note start unclamped" (Time.sec 1) (child "n").Span.start;
  let b = child "b" in
  check_time "b duration" (Time.sec 1) (Span.duration b);
  match Span.children b with
  | [ c ] ->
    Alcotest.(check string) "abandoned child closed" "c" c.Span.name;
    Alcotest.(check bool) "abandoned flagged" true
      (List.mem ("abandoned", "true") c.Span.args);
    check_time "closed where the unwind stood" (Time.sec 4)
      (Option.get c.Span.stop)
  | _ -> Alcotest.fail "expected exactly one child under b"

let test_note_clamps_future_start () =
  let sim = Sim.create ~seed:env_seed () in
  let sc = Span.scope ~sim ~proc:"p" ~thread:"t" () in
  let n = Span.note sc ~name:"n" ~cat:"phase" ~start:(Time.sec 99) () in
  check_time "start clamped to now" Time.zero n.Span.start;
  check_time "zero duration" Time.zero (Span.duration n)

let test_span_guards () =
  let s = mk "s" "phase" 1.0 2.0 in
  (try
     Span.finish s ~at:(Time.sec 3) ();
     Alcotest.fail "double finish accepted"
   with Invalid_argument _ -> ());
  let open_span = Span.create ~name:"o" ~cat:"phase" ~proc:"p" ~thread:"t" ~start:(Time.sec 5) () in
  (try
     ignore (Span.duration open_span);
     Alcotest.fail "duration of an open span accepted"
   with Invalid_argument _ -> ());
  (try
     Span.finish open_span ~at:(Time.sec 4) ();
     Alcotest.fail "stop before start accepted"
   with Invalid_argument _ -> ());
  let sim = Sim.create ~seed:env_seed () in
  let sc = Span.scope ~sim ~proc:"p" ~thread:"t" () in
  try
    Span.exit_ sc s;
    Alcotest.fail "exit of a span foreign to the scope accepted"
  with Invalid_argument _ -> ()

let test_well_formed_flags_problems () =
  let root = mk "root" "migration" 0.0 10.0 in
  let escapee = mk "escapee" "phase" 5.0 12.0 in
  Span.add_child root escapee;
  let unfinished =
    Span.create ~name:"open" ~cat:"phase" ~proc:"proc" ~thread:"thr" ~start:(Time.sec 1) ()
  in
  Span.add_child root unfinished;
  let problems = Span.well_formed root in
  Alcotest.(check int) "two problems" 2 (List.length problems);
  Alcotest.(check bool) "escapee reported" true
    (List.exists (fun p -> contains p "escapee") problems);
  Alcotest.(check bool) "unfinished reported" true
    (List.exists (fun p -> contains p "not finished") problems)

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_metrics_basics () =
  let m = Metrics.create () in
  Alcotest.(check bool) "fresh registry is empty" true (Metrics.is_empty m);
  Metrics.incr m "c";
  Metrics.incr m ~by:2.5 "c";
  Metrics.gauge m "g" 3.0;
  Metrics.gauge m "g" 1.0;
  Metrics.observe m "h" 2.0;
  Metrics.observe m "h" 1.0;
  Alcotest.(check (option (float 1e-9))) "counter sums" (Some 3.5) (Metrics.value m "c");
  Alcotest.(check (option (float 1e-9))) "gauge keeps high-water" (Some 3.0)
    (Metrics.value m "g");
  Alcotest.(check (option (float 1e-9))) "histogram has no value" None (Metrics.value m "h");
  Alcotest.(check (list (float 1e-9))) "samples in recording order" [ 2.0; 1.0 ]
    (Metrics.samples m "h");
  Alcotest.(check (list string)) "names sorted" [ "c"; "g"; "h" ] (Metrics.names m);
  Alcotest.(check bool) "kinds" true
    (Metrics.kind_of m "c" = Some Metrics.Counter
    && Metrics.kind_of m "g" = Some Metrics.Gauge
    && Metrics.kind_of m "h" = Some Metrics.Histogram
    && Metrics.kind_of m "absent" = None);
  (try
     ignore (Metrics.samples m "c");
     Alcotest.fail "samples of a counter accepted"
   with Invalid_argument _ -> ());
  try
    Metrics.incr m "g";
    Alcotest.fail "kind clash accepted"
  with Invalid_argument _ -> ()

let test_metrics_merge_is_order_insensitive () =
  let build salt =
    let m = Metrics.create () in
    Metrics.incr m ~by:(float_of_int salt) "migrations";
    Metrics.gauge m "fence.vms.max" (float_of_int (salt * 3 mod 7));
    List.iter
      (fun i -> Metrics.observe m "latency" (float_of_int ((salt * i * 37) mod 11)))
      [ 1; 2; 3 ];
    m
  in
  let parts = List.map build [ 1; 2; 3; 4 ] in
  let merged order =
    let into = Metrics.create () in
    List.iter (fun i -> Metrics.merge_into ~into (List.nth parts i)) order;
    Metrics.to_csv into
  in
  let a = merged [ 0; 1; 2; 3 ] and b = merged [ 3; 1; 0; 2 ] in
  Alcotest.(check string) "any merge order renders identically" a b;
  Alcotest.(check bool) "histogram rows carry percentiles" true (contains a "p95")

let test_metrics_table_percentiles () =
  let m = Metrics.create () in
  (* 1..100 inserted out of order: nearest-rank p50/p95/p99 on the sorted
     sample are exactly 50/95/99. *)
  List.iter
    (fun i -> Metrics.observe m "h" (float_of_int (((i * 61) mod 100) + 1)))
    (List.init 100 Fun.id);
  let csv = Metrics.to_csv m in
  let row =
    List.find (fun l -> String.length l > 2 && String.sub l 0 2 = "h,")
      (String.split_on_char '\n' csv)
  in
  Alcotest.(check string) "nearest-rank percentiles on the sorted sample"
    "h,histogram,100,5050,50.5,1,50,95,99,100" row

(* ------------------------------------------------------------------ *)
(* Recorder: bus-event reassembly *)

let test_recorder_mirrors_scope () =
  let sim = Sim.create ~seed:env_seed () in
  let probes = Probe.create sim in
  let r = Recorder.create () in
  let sub = Recorder.attach r probes in
  let sc = Span.scope ~probes ~sim ~proc:"ninja" ~thread:"migration" () in
  Sim.spawn sim (fun () ->
      let root = Span.enter sc ~name:"root" ~cat:"migration" () in
      Sim.sleep (Time.sec 1);
      let a = Span.enter sc ~name:"a" ~cat:"phase" ~args:[ ("k", "v") ] () in
      Sim.sleep (Time.sec 2);
      Span.exit_ sc a ~args:[ ("outcome", "ok") ];
      ignore
        (Span.note sc ~name:"n" ~cat:"retry" ~start:(Time.sec 1)
           ~args:[ ("phase", "a") ] ());
      let b = Span.enter sc ~name:"b" ~cat:"phase" () in
      let _c = Span.enter sc ~name:"c" ~cat:"retry" () in
      Sim.sleep (Time.sec 1);
      Span.exit_ sc b;
      Span.exit_ sc root);
  Sim.run sim;
  Probe.detach probes sub;
  Alcotest.(check (list string)) "no anomalies" [] (Recorder.anomalies r);
  Alcotest.(check int) "all spans closed" 0 (Recorder.open_spans r);
  (match (Span.roots sc, Recorder.roots r) with
  | [ local ], [ wire ] -> check_same_tree "root" local wire
  | l, w ->
    Alcotest.failf "expected one root on each side, got %d local / %d reconstructed"
      (List.length l) (List.length w));
  (* Closing spans fed the taxonomy histograms. *)
  let m = Recorder.metrics r in
  Alcotest.(check int) "two phase samples" 2
    (List.length (Metrics.samples m "phase.a.seconds")
    + List.length (Metrics.samples m "phase.b.seconds"));
  Alcotest.(check (list (float 1e-9))) "migration total" [ 4.0 ]
    (Metrics.samples m "migration.total.seconds");
  (* note (2s) + abandoned c (1s) *)
  Alcotest.(check (float 1e-9)) "retry seconds" 3.0
    (List.fold_left ( +. ) 0.0 (Metrics.samples m "retry.lost.seconds"))

let test_recorder_anomalies () =
  let sim = Sim.create ~seed:env_seed () in
  let probes = Probe.create sim in
  let r = Recorder.create () in
  let _sub = Recorder.attach r probes in
  Span.emit_end probes ~name:"ghost" ~proc:"p" ~thread:"t" ();
  Span.emit_begin probes ~name:"a" ~cat:"phase" ~proc:"p" ~thread:"t" ();
  Span.emit_end probes ~name:"mismatch" ~proc:"p" ~thread:"t" ();
  Probe.emit probes ~topic:"span" ~action:"note" ~subject:"startless"
    ~info:[ ("cat", "phase"); ("proc", "p"); ("tid", "t") ]
    ();
  let anomalies = Recorder.anomalies r in
  Alcotest.(check int) "three anomalies" 3 (List.length anomalies);
  Alcotest.(check bool) "end without begin" true
    (List.exists (fun a -> contains a "without a begin") anomalies);
  Alcotest.(check int) "mismatched end still closes" 0 (Recorder.open_spans r);
  Alcotest.(check bool) "startless note" true
    (List.exists (fun a -> contains a "carries no start") anomalies)

let test_recorder_metrics_from_instants () =
  let sim = Sim.create ~seed:env_seed () in
  let probes = Probe.create sim in
  let r = Recorder.create () in
  let _sub = Recorder.attach r probes in
  Sim.spawn sim (fun () ->
      Probe.emit probes ~topic:"migrate" ~action:"start" ();
      Probe.emit probes ~topic:"fence" ~action:"enter" ~info:[ ("count", "8") ] ();
      Sim.sleep (Time.sec 2);
      Probe.emit probes ~topic:"fence" ~action:"release" ();
      Probe.emit probes ~topic:"migration" ~action:"done" ~subject:"vm0"
        ~info:[ ("bytes", "1000"); ("rounds", "3"); ("downtime_ns", "500000000") ]
        ();
      Probe.emit probes ~topic:"fault" ~action:"injected" ~subject:"vm0" ();
      Probe.emit probes ~topic:"node" ~action:"death" ~subject:"eth00" ();
      Probe.emit probes ~topic:"plan" ~action:"built"
        ~info:[ ("steps", "4"); ("acyclic", "true") ]
        ();
      Probe.emit probes ~topic:"executor" ~action:"report"
        ~info:[ ("steps", "4"); ("failures", "1"); ("retries", "2"); ("permits-leaked", "0") ]
        ();
      Probe.emit probes ~topic:"migrate" ~action:"giveup" ~subject:"vm1" ();
      Probe.emit probes ~topic:"migrate" ~action:"rollback" ();
      Probe.emit probes ~topic:"migrate" ~action:"complete" ());
  Sim.run sim;
  let m = Recorder.metrics r in
  let counter name expected =
    Alcotest.(check (option (float 1e-9))) name (Some expected) (Metrics.value m name)
  in
  counter "migrations.started" 1.0;
  counter "migrations.completed" 1.0;
  counter "migrations.rolled_back" 1.0;
  counter "migrations.gave_up" 1.0;
  counter "precopy.bytes" 1000.0;
  counter "precopy.rounds" 3.0;
  counter "faults.injected" 1.0;
  counter "node.deaths" 1.0;
  counter "plans.built" 1.0;
  counter "executor.steps" 4.0;
  counter "executor.failures" 1.0;
  counter "executor.retries" 2.0;
  counter "fence.vms.max" 8.0;
  Alcotest.(check (list (float 1e-9))) "fence residency" [ 2.0 ]
    (Metrics.samples m "fence.residency.seconds");
  Alcotest.(check (list (float 1e-9))) "vm downtime" [ 0.5 ]
    (Metrics.samples m "vm.downtime.seconds");
  Alcotest.(check int) "every event kept as an instant" 11
    (List.length (Recorder.instants r));
  Alcotest.(check int) "events counted" 11 (Recorder.events_seen r);
  check_time "newest event timestamp" (Time.sec 2) (Recorder.last_at r)

(* ------------------------------------------------------------------ *)
(* Exporters *)

let test_export_fragment_shape () =
  let root = mk ~args:[ ("quo\"te", "line\nbreak") ] "mig\"ration" "migration" 0.0 4.0 in
  Span.add_child root (mk "a" "phase" 1.0 3.0);
  let instant =
    {
      Probe.at = Time.sec 2;
      topic = "fence";
      action = "enter";
      subject = "";
      info = [ ("count", "8") ];
    }
  in
  let frag = Export.fragment ~instants:[ instant ] [ root ] in
  Alcotest.(check int) "one complete event per span" 2 (count_substring frag {|"ph":"X"|});
  Alcotest.(check int) "one instant" 1 (count_substring frag {|"ph":"i"|});
  Alcotest.(check int) "metadata: two procs, two threads" 4
    (count_substring frag {|"ph":"M"|});
  Alcotest.(check bool) "quotes escaped" true (contains frag {|mig\"ration|});
  Alcotest.(check bool) "newlines escaped" true (contains frag {|line\nbreak|});
  Alcotest.(check bool) "microsecond timestamps" true (contains frag {|"ts":1000000.000|});
  Alcotest.(check bool) "durations in microseconds" true (contains frag {|"dur":2000000.000|});
  (* Identical trees render identically: track ids hash from names alone. *)
  let root' = mk ~args:[ ("quo\"te", "line\nbreak") ] "mig\"ration" "migration" 0.0 4.0 in
  Span.add_child root' (mk "a" "phase" 1.0 3.0);
  Alcotest.(check string) "deterministic rendering" frag
    (Export.fragment ~instants:[ instant ] [ root' ]);
  let prefixed = Export.fragment ~track_prefix:"fig6#0/" [ root ] in
  Alcotest.(check bool) "prefix namespaces the process track" true
    (contains prefixed {|"name":"fig6#0/proc"|});
  Alcotest.(check string) "nothing to render" "" (Export.fragment [])

let test_export_unfinished_closed_at_upto () =
  let s = Span.create ~name:"open" ~cat:"phase" ~proc:"p" ~thread:"t" ~start:(Time.sec 1) () in
  let frag = Export.fragment ~upto:(Time.sec 5) [ s ] in
  Alcotest.(check bool) "marked unfinished" true (contains frag {|"unfinished":"true"|});
  Alcotest.(check bool) "runs to upto" true (contains frag {|"dur":4000000.000|})

let test_export_document () =
  let frag = Export.fragment [ mk "s" "phase" 0.0 1.0 ] in
  let doc = Export.document [ ""; frag; "" ] in
  Alcotest.(check bool) "header" true
    (String.length doc > 40 && String.sub doc 0 40 = {|{"displayTimeUnit":"ms","traceEvents":[
|});
  Alcotest.(check bool) "footer" true (contains doc "\n]}\n");
  Alcotest.(check int) "empty fragments dropped" 1 (count_substring doc {|"ph":"X"|});
  (* No fragments at all still forms a loadable document. *)
  Alcotest.(check string) "empty document" "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n\n]}\n"
    (Export.document [])

let test_breakdown_of_root () =
  let root = mk "migration" "migration" 0.0 100.0 in
  Span.add_child root (mk "coordination" "phase" 0.0 5.0);
  Span.add_child root (mk "detach" "phase" 5.0 10.0);
  let precopy = mk "precopy" "phase" 10.0 50.0 in
  Span.add_child precopy (mk "retry-attempt" "retry" 20.0 30.0);
  Span.add_child precopy (mk "backoff" "retry" 30.0 35.0);
  Span.add_child root precopy;
  Span.add_child root (mk "attach" "phase" 50.0 55.0);
  let rollback = mk "rollback" "rollback" 55.0 80.0 in
  (* Inside the rollback subtree: already part of its duration, must not
     be double-billed. *)
  Span.add_child rollback (mk "retry-attempt" "retry" 60.0 70.0);
  Span.add_child root rollback;
  Span.add_child root (mk "link-up" "phase" 90.0 100.0);
  let b = Export.breakdown_of_root root in
  Alcotest.(check (float 1e-9)) "coordination" 5.0 (sec b.Breakdown.coordination);
  Alcotest.(check (float 1e-9)) "detach" 5.0 (sec b.Breakdown.detach);
  Alcotest.(check (float 1e-9)) "migration = precopy" 40.0 (sec b.Breakdown.migration);
  Alcotest.(check (float 1e-9)) "attach" 5.0 (sec b.Breakdown.attach);
  Alcotest.(check (float 1e-9)) "linkup" 10.0 (sec b.Breakdown.linkup);
  Alcotest.(check (float 1e-9)) "retry = rollback + retries outside it" 40.0
    (sec b.Breakdown.retry);
  Alcotest.(check (float 1e-9)) "total" 100.0 (sec b.Breakdown.total);
  let open_root =
    Span.create ~name:"migration" ~cat:"migration" ~proc:"p" ~thread:"t" ~start:Time.zero ()
  in
  try
    ignore (Export.breakdown_of_root open_root);
    Alcotest.fail "breakdown of an unfinished root accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* End-to-end: the bus-reconstructed migration root re-derives exactly
   the breakdown [Ninja.fallback] returns *)

let setup_agc () =
  let sim = Sim.create ~seed:env_seed () in
  (sim, Cluster.create sim ~spec:Spec.agc ())

let ib_hosts cluster n =
  List.init n (fun i -> Cluster.find_node cluster (Printf.sprintf "ib%02d" i))

let eth_hosts cluster n =
  List.init n (fun i -> Cluster.find_node cluster (Printf.sprintf "eth%02d" i))

let iteration_workload ~until ctx =
  while Mpi.wtime ctx < until do
    Mpi.compute ctx ~seconds:0.3;
    Mpi.allreduce ctx ~bytes:2.0e8;
    Mpi.checkpoint_point ctx
  done

let run_fallback ?(faults = []) ~vms () =
  let sim, cluster = setup_agc () in
  List.iter
    (fun text ->
      match Injector.parse_spec text with
      | Ok spec -> Injector.arm_spec (Cluster.injector cluster) spec
      | Error e -> Alcotest.failf "bad fault spec %S: %s" text e)
    faults;
  let ninja = Ninja.setup cluster ~hosts:(ib_hosts cluster vms) () in
  ignore (Ninja.launch ninja ~procs_per_vm:1 (iteration_workload ~until:120.0));
  let b = ref Breakdown.zero in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 10);
      b := Ninja.fallback ninja ~dsts:(eth_hosts cluster vms) ();
      Ninja.wait_job ninja);
  let r = Recorder.create () in
  Probe.with_subscriber (Cluster.probes cluster) (Recorder.on_event r) (fun () ->
      Sim.run sim);
  (ninja, r, !b)

let migration_roots r =
  List.filter (fun (s : Span.t) -> s.Span.cat = "migration") (Recorder.roots r)

let assert_sound r =
  Alcotest.(check (list string)) "no anomalies" [] (Recorder.anomalies r);
  Alcotest.(check int) "no span left open" 0 (Recorder.open_spans r);
  List.iter
    (fun root -> Alcotest.(check (list string)) "well-formed" [] (Span.well_formed root))
    (Recorder.roots r)

let test_e2e_breakdown_matches () =
  let ninja, r, b = run_fallback ~vms:4 () in
  Alcotest.(check bool) "completed" true (Ninja.last_outcome ninja = Some Ninja.Completed);
  assert_sound r;
  match migration_roots r with
  | [ root ] ->
    check_breakdown_eq "bus-reconstructed breakdown" b (Export.breakdown_of_root root);
    Alcotest.(check bool) "fault-free run billed no retry" true
      (sec b.Breakdown.retry = 0.0);
    let m = Recorder.metrics r in
    Alcotest.(check (option (float 1e-9))) "started" (Some 1.0)
      (Metrics.value m "migrations.started");
    Alcotest.(check (option (float 1e-9))) "completed" (Some 1.0)
      (Metrics.value m "migrations.completed");
    Alcotest.(check int) "one total-duration sample" 1
      (List.length (Metrics.samples m "migration.total.seconds"));
    Alcotest.(check bool) "precopy traffic counted" true
      (match Metrics.value m "precopy.bytes" with Some v -> v > 1e9 | None -> false);
    Alcotest.(check int) "one downtime sample per VM" 4
      (List.length (Metrics.samples m "vm.downtime.seconds"))
  | roots -> Alcotest.failf "expected one migration root, got %d" (List.length roots)

let test_e2e_rollback_breakdown_matches () =
  let ninja, r, b = run_fallback ~faults:[ "precopy-abort:count=inf" ] ~vms:2 () in
  Alcotest.(check bool) "rolled back" true
    (match Ninja.last_outcome ninja with Some (Ninja.Rolled_back _) -> true | _ -> false);
  assert_sound r;
  match migration_roots r with
  | [ root ] ->
    check_breakdown_eq "bus-reconstructed breakdown" b (Export.breakdown_of_root root);
    Alcotest.(check bool) "retry time billed" true (sec b.Breakdown.retry > 0.0);
    Alcotest.(check bool) "rollback child present" true
      (Span.find_child root "rollback" <> None);
    Alcotest.(check (option (float 1e-9))) "rollback counted" (Some 1.0)
      (Metrics.value (Recorder.metrics r) "migrations.rolled_back")
  | roots -> Alcotest.failf "expected one migration root, got %d" (List.length roots)

(* ------------------------------------------------------------------ *)
(* Fuzz: every scenario's reconstructed span trees are sound *)

let spans_well_formed_prop =
  QCheck.Test.make ~name:"recorder trees from fuzz scenarios are well-formed" ~count:20
    QCheck.small_int (fun salt ->
      let prng = Prng.create ~seed:(salted salt) in
      let sc = Scenario.gen prng in
      let r = Recorder.create () in
      let result =
        Runner.run
          ~attach:(fun cluster -> ignore (Recorder.attach r (Cluster.probes cluster)))
          sc
      in
      match result.Runner.outcome with
      | Runner.Crashed msg ->
        QCheck.Test.fail_reportf "scenario crashed: %s (%s)" msg (Scenario.to_string sc)
      | Runner.Passed | Runner.Violated _ ->
        (match Recorder.anomalies r with
        | [] -> ()
        | a :: _ -> QCheck.Test.fail_reportf "recorder anomaly: %s" a);
        if Recorder.open_spans r <> 0 then
          QCheck.Test.fail_reportf "%d span(s) left open" (Recorder.open_spans r);
        List.for_all
          (fun root ->
            match Span.well_formed root with
            | [] -> true
            | p :: _ -> QCheck.Test.fail_reportf "ill-formed tree: %s" p)
          (Recorder.roots r))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "ninja_telemetry"
    [
      ( "span",
        [
          Alcotest.test_case "scope builds a nested tree" `Quick test_scope_builds_tree;
          Alcotest.test_case "note clamps a future start" `Quick test_note_clamps_future_start;
          Alcotest.test_case "lifecycle guards" `Quick test_span_guards;
          Alcotest.test_case "well_formed flags problems" `Quick
            test_well_formed_flags_problems;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters, gauges, histograms" `Quick test_metrics_basics;
          Alcotest.test_case "merge order cannot matter" `Quick
            test_metrics_merge_is_order_insensitive;
          Alcotest.test_case "table percentiles" `Quick test_metrics_table_percentiles;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "reassembles the emitted tree" `Quick
            test_recorder_mirrors_scope;
          Alcotest.test_case "anomalies on a broken stream" `Quick test_recorder_anomalies;
          Alcotest.test_case "protocol metrics from instants" `Quick
            test_recorder_metrics_from_instants;
        ] );
      ( "export",
        [
          Alcotest.test_case "fragment shape and escaping" `Quick test_export_fragment_shape;
          Alcotest.test_case "unfinished spans close at upto" `Quick
            test_export_unfinished_closed_at_upto;
          Alcotest.test_case "document wrapping" `Quick test_export_document;
          Alcotest.test_case "breakdown re-derivation" `Quick test_breakdown_of_root;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "fault-free breakdown matches exactly" `Quick
            test_e2e_breakdown_matches;
          Alcotest.test_case "rollback breakdown matches exactly" `Quick
            test_e2e_rollback_breakdown_matches;
        ] );
      ("fuzz", List.map QCheck_alcotest.to_alcotest [ spans_well_formed_prop ]);
    ]
