(* Tests for the fault-tolerance runtime: periodic coordinated snapshots
   and restart-from-image on replacement hosts (paper section II). *)

open Ninja_engine
open Ninja_hardware
open Ninja_vmm
open Ninja_mpi
open Ninja_core
open Ninja_ft

let setup () =
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~spec:Spec.agc () in
  let store = Snapshot.create_store cluster in
  (sim, cluster, store)

let hosts cluster prefix n =
  List.init n (fun i -> Cluster.find_node cluster (Printf.sprintf "%s%02d" prefix i))

let spec ?(iterations = 30) ?(checkpoint_every = 5) () =
  {
    Ft_runtime.procs_per_vm = 2;
    iterations;
    checkpoint_every;
    step =
      (fun ctx _i ->
        Mpi.compute ctx ~seconds:0.5;
        Mpi.allreduce ctx ~bytes:1.0e6);
  }

let test_periodic_checkpoints () =
  let sim, cluster, store = setup () in
  let ft = Ft_runtime.start cluster ~store ~hosts:(hosts cluster "ib" 2) (spec ()) in
  Sim.spawn sim (fun () -> Ft_runtime.await ft);
  Sim.run sim;
  Alcotest.(check bool) "finished" true (Ft_runtime.is_finished ft);
  Alcotest.(check int) "all iterations" 30 (Ft_runtime.completed_iterations ft);
  (match Ft_runtime.last_checkpoint ft with
  | Some (iter, snaps) ->
    Alcotest.(check int) "one snapshot per VM" 2 (List.length snaps);
    Alcotest.(check bool) "a late multiple-of-5 fence" true (iter >= 20 && iter < 30)
  | None -> Alcotest.fail "no checkpoint recorded");
  (* Every iteration ran exactly once — no failures, no rework. *)
  for i = 1 to 30 do
    Alcotest.(check int) (Printf.sprintf "iteration %d once" i) 1 (Ft_runtime.executions_of ft i)
  done

let test_restart_from_checkpoint () =
  let sim, cluster, store = setup () in
  let ib = hosts cluster "ib" 2 and eth = hosts cluster "eth" 2 in
  let ft = Ft_runtime.start cluster ~store ~hosts:ib (spec ()) in
  Sim.spawn sim (fun () ->
      (* Let it get past a couple of checkpoints (~0.5 s/iteration plus
         checkpoint stalls), then lose the InfiniBand data center. *)
      Sim.sleep (Time.sec 30);
      let before = Ft_runtime.completed_iterations ft in
      Alcotest.(check bool) "failure mid-run" true (before > 5 && before < 30);
      Ft_runtime.fail_and_restart ft ~new_hosts:eth;
      Ft_runtime.await ft);
  Sim.run sim;
  Alcotest.(check bool) "finished after restart" true (Ft_runtime.is_finished ft);
  Alcotest.(check int) "completed everything" 30 (Ft_runtime.completed_iterations ft);
  Alcotest.(check int) "second incarnation" 1 (Ft_runtime.incarnation ft);
  (* The new incarnation lives on the Ethernet cluster. *)
  List.iter
    (fun vm -> Alcotest.(check int) "on rack 1" 1 (Vm.host vm).Node.rack)
    (Ninja.vms (Ft_runtime.ninja ft));
  (* Work since the last checkpoint was re-executed; nothing was skipped. *)
  let reexecuted =
    List.exists (fun i -> Ft_runtime.executions_of ft i >= 2) (List.init 30 (fun i -> i + 1))
  in
  Alcotest.(check bool) "some rework (checkpoint interval lost)" true reexecuted;
  for i = 1 to 30 do
    Alcotest.(check bool)
      (Printf.sprintf "iteration %d ran" i)
      true
      (Ft_runtime.executions_of ft i >= 1)
  done

let test_restart_back_to_ib_restores_openib () =
  (* Restart onto IB hosts: the HCAs are re-attached and the job ends up
     back on openib after link training. *)
  let sim, cluster, store = setup () in
  let ib01 = hosts cluster "ib" 2 in
  let ib2 =
    [ Cluster.find_node cluster "ib02"; Cluster.find_node cluster "ib03" ]
  in
  let transport = ref None in
  let spec =
    {
      Ft_runtime.procs_per_vm = 1;
      iterations = 40;
      checkpoint_every = 5;
      step =
        (fun ctx _ ->
          Mpi.compute ctx ~seconds:0.5;
          Mpi.allreduce ctx ~bytes:1.0e6;
          if Mpi.rank ctx = 0 then transport := Mpi.current_transport ctx ~peer:1);
    }
  in
  let ft = Ft_runtime.start cluster ~store ~hosts:ib01 spec in
  Sim.spawn sim (fun () ->
      (* Past the first checkpoint (the 2x ~2.3 GB snapshot streams take
         ~12 s on the NFS path). *)
      Sim.sleep (Time.sec 20);
      Ft_runtime.fail_and_restart ft ~new_hosts:ib2;
      Ft_runtime.await ft);
  Sim.run sim;
  Alcotest.(check bool) "finished" true (Ft_runtime.is_finished ft);
  Alcotest.(check (option string)) "openib restored after restart" (Some "openib")
    (Option.map Btl.kind_name !transport)

let test_restart_to_eth_selects_tcp () =
  (* The complement of the openib case: restarting onto HCA-less Ethernet
     hosts must re-select the BTLs — tcp between VMs, while ranks sharing
     a VM keep the shared-memory path. *)
  let sim, cluster, store = setup () in
  let inter = ref None and intra = ref None in
  let spec =
    {
      Ft_runtime.procs_per_vm = 2;
      iterations = 40;
      checkpoint_every = 5;
      step =
        (fun ctx _ ->
          Mpi.compute ctx ~seconds:0.5;
          Mpi.allreduce ctx ~bytes:1.0e6;
          if Mpi.rank ctx = 0 then begin
            intra := Mpi.current_transport ctx ~peer:1;
            inter := Mpi.current_transport ctx ~peer:2
          end);
    }
  in
  let ft = Ft_runtime.start cluster ~store ~hosts:(hosts cluster "ib" 2) spec in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 20);
      Ft_runtime.fail_and_restart ft ~new_hosts:(hosts cluster "eth" 2);
      Ft_runtime.await ft);
  Sim.run sim;
  Alcotest.(check bool) "finished" true (Ft_runtime.is_finished ft);
  Alcotest.(check (option string)) "tcp between VMs after restore" (Some "tcp")
    (Option.map Btl.kind_name !inter);
  Alcotest.(check (option string)) "sm within a VM survives the restore" (Some "sm")
    (Option.map Btl.kind_name !intra)

let test_double_restart_reselects_each_time () =
  (* ib -> eth -> ib: the BTL follows the hardware through consecutive
     restores (tcp while on Ethernet, openib once back on HCAs), and the
     incarnation counter records both restarts. *)
  let sim, cluster, store = setup () in
  let ib2 = [ Cluster.find_node cluster "ib02"; Cluster.find_node cluster "ib03" ] in
  let transport = ref None in
  let on_eth = ref None in
  let spec =
    {
      Ft_runtime.procs_per_vm = 1;
      iterations = 60;
      checkpoint_every = 5;
      step =
        (fun ctx _ ->
          Mpi.compute ctx ~seconds:0.5;
          Mpi.allreduce ctx ~bytes:1.0e6;
          if Mpi.rank ctx = 0 then transport := Mpi.current_transport ctx ~peer:1);
    }
  in
  let ft = Ft_runtime.start cluster ~store ~hosts:(hosts cluster "ib" 2) spec in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 20);
      Ft_runtime.fail_and_restart ft ~new_hosts:(hosts cluster "eth" 2);
      Sim.sleep (Time.sec 25);
      Alcotest.(check bool) "still running on the Ethernet cluster" true
        (Ft_runtime.completed_iterations ft < 60);
      on_eth := !transport;
      Ft_runtime.fail_and_restart ft ~new_hosts:ib2;
      Ft_runtime.await ft);
  Sim.run sim;
  Alcotest.(check bool) "finished" true (Ft_runtime.is_finished ft);
  Alcotest.(check int) "all iterations" 60 (Ft_runtime.completed_iterations ft);
  Alcotest.(check int) "third incarnation" 2 (Ft_runtime.incarnation ft);
  Alcotest.(check (option string)) "tcp while on Ethernet" (Some "tcp")
    (Option.map Btl.kind_name !on_eth);
  Alcotest.(check (option string)) "openib after returning to IB" (Some "openib")
    (Option.map Btl.kind_name !transport);
  List.iter
    (fun vm -> Alcotest.(check bool) "back on IB nodes" true (Node.has_ib (Vm.host vm)))
    (Ninja.vms (Ft_runtime.ninja ft))

let test_restart_without_checkpoint_fails () =
  let sim, cluster, store = setup () in
  let ft =
    Ft_runtime.start cluster ~store ~hosts:(hosts cluster "ib" 2)
      (spec ~iterations:100 ~checkpoint_every:90 ())
  in
  let failed = ref false in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 2);
      (match Ft_runtime.fail_and_restart ft ~new_hosts:(hosts cluster "eth" 2) with
      | () -> ()
      | exception Failure _ -> failed := true);
      Ft_runtime.await ft);
  Sim.run sim;
  Alcotest.(check bool) "refused without stable checkpoint" true !failed

let () =
  Alcotest.run "ninja_ft"
    [
      ( "ft",
        [
          Alcotest.test_case "periodic checkpoints" `Quick test_periodic_checkpoints;
          Alcotest.test_case "restart from checkpoint" `Quick test_restart_from_checkpoint;
          Alcotest.test_case "restart back to IB" `Quick test_restart_back_to_ib_restores_openib;
          Alcotest.test_case "restart to Ethernet re-selects tcp" `Quick
            test_restart_to_eth_selects_tcp;
          Alcotest.test_case "double restart re-selects each time" `Quick
            test_double_restart_reselects_each_time;
          Alcotest.test_case "no checkpoint -> refuse" `Quick test_restart_without_checkpoint_fails;
        ] );
    ]
