(* Tests for the VMM layer: guest memory tracking, VM lifecycle, hotplug,
   precopy migration, QMP, snapshots. *)

open Ninja_engine
open Ninja_hardware
open Ninja_vmm

let check_float = Alcotest.(check (float 1e-6))

let check_near msg tolerance expected actual =
  if Float.abs (expected -. actual) > tolerance then
    Alcotest.failf "%s: expected %g +/- %g, got %g" msg expected tolerance actual

let small_cluster () =
  let sim = Sim.create () in
  (sim, Cluster.create sim ~spec:Spec.small ())

let mk_vm ?(mem_gb = 20.0) cluster host =
  Vm.create cluster ~name:"vm0" ~host ~vcpus:8 ~mem_bytes:(Units.gb mem_gb) ()

(* ------------------------------------------------------------------ *)
(* Memory *)

let test_memory_counters () =
  let m = Memory.create ~total_bytes:(Units.gb 1.0) in
  check_float "all zero initially" 0.0 (Memory.nonzero_bytes m);
  check_float "zero = total" (Memory.total_bytes m) (Memory.zero_bytes m);
  let r = Memory.alloc m ~bytes:(Units.mb 100.0) in
  check_float "alloc does not touch" 0.0 (Memory.nonzero_bytes m);
  Memory.write m r ~offset:0.0 ~bytes:(Units.mb 10.0);
  check_near "10 MiB nonzero" 8192.0 (Units.mb 10.0) (Memory.nonzero_bytes m);
  check_near "10 MiB dirty" 8192.0 (Units.mb 10.0) (Memory.dirty_bytes m);
  Memory.clear_dirty m;
  check_float "dirty cleared" 0.0 (Memory.dirty_bytes m);
  check_near "nonzero survives clear" 8192.0 (Units.mb 10.0) (Memory.nonzero_bytes m);
  (* Rewriting the same pages re-dirties but does not grow nonzero. *)
  Memory.write m r ~offset:0.0 ~bytes:(Units.mb 10.0);
  check_near "re-dirty" 8192.0 (Units.mb 10.0) (Memory.dirty_bytes m);
  check_near "nonzero unchanged" 8192.0 (Units.mb 10.0) (Memory.nonzero_bytes m)

let test_memory_free_and_reuse () =
  let m = Memory.create ~total_bytes:(Units.mb 1.0) in
  let r = Memory.alloc m ~bytes:(Units.mb 1.0) in
  Memory.write_all m r;
  Memory.free m r;
  check_float "freed pages are zero" 0.0 (Memory.nonzero_bytes m);
  (* The space is reusable. *)
  let r2 = Memory.alloc m ~bytes:(Units.mb 1.0) in
  ignore (Memory.alloc m ~bytes:0.0);
  Memory.write_all m r2;
  Alcotest.check_raises "write to freed region" (Invalid_argument "Memory.write: region was freed")
    (fun () -> Memory.write m r ~offset:0.0 ~bytes:1.0)

let test_memory_out_of_memory () =
  let m = Memory.create ~total_bytes:(Units.mb 1.0) in
  Alcotest.check_raises "oom" (Invalid_argument "Memory.alloc: out of guest memory") (fun () ->
      ignore (Memory.alloc m ~bytes:(Units.mb 2.0)))

(* Model-based check: the bitmap implementation must agree with a naive
   page-set reference over arbitrary write/clear sequences. *)
let memory_model_prop =
  let module IS = Set.Make (Int) in
  QCheck.Test.make ~name:"memory agrees with a page-set model" ~count:200
    QCheck.(small_list (pair bool (pair (int_bound 1000) (int_bound 300))))
    (fun ops ->
      let total = Units.mb 4.0 in
      let m = Memory.create ~total_bytes:total in
      let r = Memory.alloc m ~bytes:total in
      let ps = Memory.page_size in
      let pages = int_of_float total / ps in
      let nonzero = ref IS.empty and dirty = ref IS.empty in
      let consistent () =
        Memory.nonzero_bytes m = float_of_int (IS.cardinal !nonzero * ps)
        && Memory.dirty_bytes m = float_of_int (IS.cardinal !dirty * ps)
      in
      List.for_all
        (fun (clear, (off_kb, len_kb)) ->
          if clear then begin
            Memory.clear_dirty m;
            dirty := IS.empty
          end
          else begin
            let off = off_kb * 1024 and len = len_kb * 1024 in
            Memory.write m r ~offset:(float_of_int off) ~bytes:(float_of_int len);
            if len > 0 then
              for p = off / ps to min (pages - 1) ((off + len - 1) / ps) do
                nonzero := IS.add p !nonzero;
                dirty := IS.add p !dirty
              done
          end;
          consistent ())
        ops)

(* Differential check of the postcopy dual-residency tracking: 1000
   random write / clear_dirty / begin / end / pull operations against a
   naive set-based oracle. The oracle claims remote pages lowest-index-
   first on pulls, marks post-switchover writes resident, and drops the
   resident set at end_postcopy — after every operation the bitmap
   implementation must agree page-for-page on nonzero, dirty and
   resident, and on every derived byte counter. Pulls only run while
   postcopy is active, as in [Migration.postcopy]: outside that window
   the pull cursor's drained-word skipping is not defined. *)
let memory_residency_differential_prop =
  let module IS = Set.Make (Int) in
  QCheck.Test.make ~name:"postcopy residency agrees with a set-based oracle" ~count:50
    QCheck.small_int (fun salt ->
      let prng = Prng.create ~seed:(Int64.of_int (8000 + salt)) in
      let total = Units.mb 8.0 in
      let m = Memory.create ~total_bytes:total in
      let r = Memory.alloc m ~bytes:total in
      let ps = Memory.page_size in
      let pages = int_of_float total / ps in
      let nonzero = ref IS.empty and dirty = ref IS.empty and resident = ref IS.empty in
      let active = ref false in
      let check_page_for_page op =
        for p = 0 to pages - 1 do
          if Memory.page_nonzero m p <> IS.mem p !nonzero then
            QCheck.Test.fail_reportf "%s: page %d nonzero mismatch" op p;
          if Memory.page_dirty m p <> IS.mem p !dirty then
            QCheck.Test.fail_reportf "%s: page %d dirty mismatch" op p;
          if Memory.page_resident m p <> IS.mem p !resident then
            QCheck.Test.fail_reportf "%s: page %d resident mismatch" op p
        done;
        let bytes s = float_of_int (IS.cardinal !s * ps) in
        if Memory.nonzero_bytes m <> bytes nonzero then
          QCheck.Test.fail_reportf "%s: nonzero_bytes mismatch" op;
        if Memory.dirty_bytes m <> bytes dirty then
          QCheck.Test.fail_reportf "%s: dirty_bytes mismatch" op;
        if Memory.resident_bytes m <> bytes resident then
          QCheck.Test.fail_reportf "%s: resident_bytes mismatch" op;
        if Memory.remote_bytes m <> bytes nonzero -. bytes resident then
          QCheck.Test.fail_reportf "%s: remote_bytes mismatch" op;
        if Memory.postcopy_active m <> !active then
          QCheck.Test.fail_reportf "%s: postcopy_active mismatch" op
      in
      for _ = 1 to 1000 do
        let op =
          match Prng.int prng 10 with
          | 0 | 1 | 2 | 3 ->
            (* Guest write: dirties and fills pages; materialises them at
               the destination when the drain is in progress. *)
            let off = Prng.int prng (pages * ps) in
            let len = Prng.int prng (ps * 8) in
            Memory.write m r ~offset:(float_of_int off) ~bytes:(float_of_int len);
            if len > 0 then
              for p = off / ps to min (pages - 1) ((off + len - 1) / ps) do
                nonzero := IS.add p !nonzero;
                dirty := IS.add p !dirty;
                if !active then resident := IS.add p !resident
              done;
            "write"
          | 4 ->
            Memory.clear_dirty m;
            dirty := IS.empty;
            "clear_dirty"
          | 5 ->
            Memory.begin_postcopy m;
            resident := IS.empty;
            active := true;
            "begin_postcopy"
          | 6 ->
            Memory.end_postcopy m;
            resident := IS.empty;
            active := false;
            "end_postcopy"
          | _ ->
            if not !active then begin
              Memory.begin_postcopy m;
              resident := IS.empty;
              active := true;
              "begin_postcopy"
            end
            else begin
              let k = 1 + Prng.int prng (pages / 2) in
              let remote = IS.diff !nonzero !resident in
              (* Oracle: the k lowest remote pages become resident. *)
              let expect = min k (IS.cardinal remote) in
              let claimed = ref 0 in
              IS.iter
                (fun p ->
                  if !claimed < expect then begin
                    resident := IS.add p !resident;
                    incr claimed
                  end)
                remote;
              let got = Memory.pull_pages m ~max_pages:k in
              if got <> expect then
                QCheck.Test.fail_reportf "pull_pages returned %d, oracle %d" got expect;
              "pull_pages"
            end
        in
        check_page_for_page op
      done;
      true)

let memory_invariants_prop =
  QCheck.Test.make ~name:"dirty <= nonzero <= total under random writes" ~count:200
    QCheck.(small_list (pair (int_bound 900) (int_bound 200)))
    (fun writes ->
      let m = Memory.create ~total_bytes:(Units.mb 1.0) in
      let r = Memory.alloc m ~bytes:(Units.mb 1.0) in
      List.iter
        (fun (off_kb, len_kb) ->
          Memory.write m r ~offset:(float_of_int off_kb *. 1024.0)
            ~bytes:(float_of_int len_kb *. 1024.0))
        writes;
      Memory.dirty_bytes m <= Memory.nonzero_bytes m
      && Memory.nonzero_bytes m <= Memory.total_bytes m)

(* ------------------------------------------------------------------ *)
(* Vm *)

let test_vm_boot_state () =
  let _, cluster = small_cluster () in
  let vm = mk_vm cluster (Cluster.find_node cluster "ib00") in
  Alcotest.(check bool) "running" true (Vm.state vm = Vm.Running);
  Alcotest.(check bool) "virtio attached at boot" true (Vm.find_device vm ~tag:"virtio0" <> None);
  Alcotest.(check bool) "no bypass yet" false (Vm.has_bypass_device vm);
  check_near "os resident ~2.3GB" 1e7 2.3e9 (Memory.nonzero_bytes (Vm.memory vm));
  check_float "boot image is clean" 0.0 (Memory.dirty_bytes (Vm.memory vm))

let test_vm_compute_timing () =
  let sim, cluster = small_cluster () in
  let vm = mk_vm cluster (Cluster.find_node cluster "ib00") in
  let t = ref 0.0 in
  Sim.spawn sim (fun () ->
      Vm.compute vm ~core_seconds:5.0;
      t := Time.to_sec_f (Sim.now sim));
  Sim.run sim;
  check_float "5 core-sec on idle host" 5.0 !t

let test_vm_pause_gates_compute () =
  let sim, cluster = small_cluster () in
  let vm = mk_vm cluster (Cluster.find_node cluster "ib00") in
  let t = ref 0.0 in
  Sim.spawn sim (fun () ->
      Vm.compute vm ~chunk:0.5 ~core_seconds:4.0;
      t := Time.to_sec_f (Sim.now sim));
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 1);
      Vm.pause vm;
      Sim.sleep (Time.sec 10);
      Vm.resume vm);
  Sim.run sim;
  (* 4 s of work with a 10 s pause in the middle: 14 s, +-1 chunk. *)
  check_near "paused VM makes no progress" 0.51 14.0 !t

let test_vm_guest_write_dirty_and_timing () =
  let sim, cluster = small_cluster () in
  let vm = mk_vm cluster (Cluster.find_node cluster "ib00") in
  let t = ref 0.0 in
  Sim.spawn sim (fun () ->
      let r = Memory.alloc (Vm.memory vm) ~bytes:(Units.gb 2.0) in
      Vm.guest_write vm r ~offset:0.0 ~bytes:(Units.gb 2.0) ~bandwidth:2.0e9;
      t := Time.to_sec_f (Sim.now sim));
  Sim.run sim;
  check_near "2 GiB at 2 GB/s" 1e-3 (Units.gb 2.0 /. 2.0e9) !t;
  check_near "2 GiB dirty" 1e5 (Units.gb 2.0) (Memory.dirty_bytes (Vm.memory vm))

let test_vm_overcommit_two_vms () =
  (* Two 8-vCPU VMs each running 8 single-core tasks on one 8-core host:
     everything at half speed (Fig. 8's consolidation effect). *)
  let sim, cluster = small_cluster () in
  let host = Cluster.find_node cluster "eth00" in
  let vm1 = Vm.create cluster ~name:"vm1" ~host ~vcpus:8 ~mem_bytes:(Units.gb 20.0) () in
  let vm2 = Vm.create cluster ~name:"vm2" ~host ~vcpus:8 ~mem_bytes:(Units.gb 20.0) () in
  let finish = ref [] in
  List.iter
    (fun vm ->
      for _ = 1 to 8 do
        Sim.spawn sim (fun () ->
            Vm.compute vm ~core_seconds:3.0;
            finish := Time.to_sec_f (Sim.now sim) :: !finish)
      done)
    [ vm1; vm2 ];
  Sim.run sim;
  List.iter (fun f -> check_float "halved rate" 6.0 f) !finish

let test_vm_too_big_for_host () =
  let _, cluster = small_cluster () in
  let host = Cluster.find_node cluster "ib00" in
  Alcotest.check_raises "oversized VM" (Invalid_argument "Vm.create: VM larger than host memory")
    (fun () -> ignore (Vm.create cluster ~name:"big" ~host ~vcpus:8 ~mem_bytes:(Units.gb 64.0) ()))

(* ------------------------------------------------------------------ *)
(* Hotplug *)

let test_hotplug_add_del_timing () =
  let sim, cluster = small_cluster () in
  let vm = mk_vm cluster (Cluster.find_node cluster "ib00") in
  Sim.spawn sim (fun () ->
      let hca = Device.make ~tag:"vf0" ~pci_addr:"04:00.0" Device.Ib_hca in
      let t_add = Hotplug.device_add vm ~device:hca () in
      check_float "attach_ib" (Time.to_sec_f Calibration.attach_ib) (Time.to_sec_f t_add);
      Alcotest.(check bool) "bypass attached" true (Vm.has_bypass_device vm);
      let t_del = Hotplug.device_del vm ~tag:"vf0" () in
      check_float "detach_ib" (Time.to_sec_f Calibration.detach_ib) (Time.to_sec_f t_del);
      Alcotest.(check bool) "bypass gone" false (Vm.has_bypass_device vm));
  Sim.run sim

let test_hotplug_noise_factor () =
  let sim, cluster = small_cluster () in
  let vm = mk_vm cluster (Cluster.find_node cluster "ib00") in
  Sim.spawn sim (fun () ->
      let hca = Device.make ~tag:"vf0" ~pci_addr:"04:00.0" Device.Ib_hca in
      let t_add = Hotplug.device_add vm ~device:hca ~noise:3.0 () in
      check_near "3x under migration noise" 1e-6
        (3.0 *. Time.to_sec_f Calibration.attach_ib)
        (Time.to_sec_f t_add));
  Sim.run sim

let test_hotplug_no_backing_port () =
  let sim, cluster = small_cluster () in
  let vm = mk_vm cluster (Cluster.find_node cluster "eth00") in
  let raised = ref false in
  Sim.spawn sim (fun () ->
      let hca = Device.make ~tag:"vf0" ~pci_addr:"04:00.0" Device.Ib_hca in
      match Hotplug.device_add vm ~device:hca () with
      | _ -> ()
      | exception Hotplug.No_backing_port _ -> raised := true);
  Sim.run sim;
  Alcotest.(check bool) "cannot passthrough missing hardware" true !raised

let test_hotplug_hooks_fire () =
  let sim, cluster = small_cluster () in
  let vm = mk_vm cluster (Cluster.find_node cluster "ib00") in
  let added = ref [] and removed = ref [] in
  Vm.on_device_added vm (fun d -> added := d.Device.tag :: !added);
  Vm.on_device_removed vm (fun d -> removed := d.Device.tag :: !removed);
  Sim.spawn sim (fun () ->
      let hca = Device.make ~tag:"vf0" ~pci_addr:"04:00.0" Device.Ib_hca in
      ignore (Hotplug.device_add vm ~device:hca ());
      ignore (Hotplug.device_del vm ~tag:"vf0" ()));
  Sim.run sim;
  Alcotest.(check (list string)) "added hook" [ "vf0" ] !added;
  Alcotest.(check (list string)) "removed hook" [ "vf0" ] !removed

(* ------------------------------------------------------------------ *)
(* Migration *)

let test_migration_refuses_bypass () =
  let sim, cluster = small_cluster () in
  let vm = mk_vm cluster (Cluster.find_node cluster "ib00") in
  let refused = ref false in
  Sim.spawn sim (fun () ->
      ignore
        (Hotplug.device_add vm ~device:(Device.make ~tag:"vf0" ~pci_addr:"04:00.0" Device.Ib_hca) ());
      (match Migration.migrate vm ~dst:(Cluster.find_node cluster "ib01") () with
      | _ -> ()
      | exception Migration.Bypass_device_attached _ -> refused := true);
      ignore (Hotplug.device_del vm ~tag:"vf0" ()));
  Sim.run sim;
  Alcotest.(check bool) "refused" true !refused

let test_migration_frozen_guest_duration () =
  (* A paused guest dirties nothing: one full walk, zero downtime payload.
     Expected duration = nonzero/transfer_rate + zero/scan_rate. *)
  let sim, cluster = small_cluster () in
  let vm = mk_vm cluster (Cluster.find_node cluster "ib00") in
  let dst = Cluster.find_node cluster "eth00" in
  let stats = ref None in
  Sim.spawn sim (fun () ->
      Vm.pause vm;
      stats := Some (Migration.migrate vm ~dst ()));
  Sim.run sim;
  let stats = Option.get !stats in
  let memory = Vm.memory vm in
  let expected =
    (Memory.nonzero_bytes memory /. Calibration.transfer_rate)
    +. (Memory.zero_bytes memory /. Calibration.zero_scan_rate)
  in
  check_near "frozen-guest walk" 0.05 expected (Time.to_sec_f stats.Migration.duration);
  check_float "no downtime payload" 0.0 (Time.to_sec_f stats.Migration.downtime);
  Alcotest.(check bool) "moved" true (Vm.host vm == dst);
  Alcotest.(check bool) "stays paused" true (Vm.state vm = Vm.Paused)

let test_migration_self () =
  let sim, cluster = small_cluster () in
  let host = Cluster.find_node cluster "ib00" in
  let vm = mk_vm cluster host in
  let ok = ref false in
  Sim.spawn sim (fun () ->
      Vm.pause vm;
      let stats = Migration.migrate vm ~dst:host () in
      ok := stats.Migration.transferred_bytes > 0.0 && Vm.host vm == host);
  Sim.run sim;
  Alcotest.(check bool) "self-migration works" true !ok

let test_migration_live_dirtier_costs_more () =
  (* A guest writing memory during migration forces extra precopy rounds. *)
  let run_with_writer writer =
    let sim, cluster = small_cluster () in
    let vm = mk_vm cluster (Cluster.find_node cluster "ib00") in
    let dst = Cluster.find_node cluster "eth00" in
    let result = ref None in
    Sim.spawn sim (fun () ->
        let region = Memory.alloc (Vm.memory vm) ~bytes:(Units.gb 2.0) in
        Vm.guest_write vm region ~offset:0.0 ~bytes:(Units.gb 2.0) ~bandwidth:3.0e9;
        if writer then
          Sim.spawn sim (fun () ->
              (* Keep rewriting the array while migration runs. *)
              for _ = 1 to 20 do
                Vm.guest_write vm region ~offset:0.0 ~bytes:(Units.gb 2.0) ~bandwidth:3.0e9
              done);
        Sim.sleep (Time.ms 10);
        result := Some (Migration.migrate vm ~dst ()));
    Sim.run_until sim (Time.minutes 30);
    Option.get !result
  in
  let idle = run_with_writer false in
  let busy = run_with_writer true in
  Alcotest.(check bool) "dirtying guest transfers more" true
    (busy.Migration.transferred_bytes > idle.Migration.transferred_bytes);
  Alcotest.(check bool) "extra rounds" true (busy.Migration.rounds >= idle.Migration.rounds);
  Alcotest.(check bool) "downtime bounded by target or max rounds" true
    Time.(busy.Migration.downtime <= Time.sec 8)

let test_migration_resumes_running_guest () =
  let sim, cluster = small_cluster () in
  let vm = mk_vm cluster (Cluster.find_node cluster "ib00") in
  Sim.spawn sim (fun () -> ignore (Migration.migrate vm ~dst:(Cluster.find_node cluster "eth01") ()));
  Sim.run sim;
  Alcotest.(check bool) "running after" true (Vm.state vm = Vm.Running)

let test_migration_postcopy_downtime_constant () =
  (* Postcopy downtime is the hot-set push, independent of footprint. *)
  let run size_gb =
    let sim, cluster = small_cluster () in
    let vm = mk_vm cluster (Cluster.find_node cluster "ib00") in
    let dst = Cluster.find_node cluster "eth00" in
    let stats = ref None in
    Sim.spawn sim (fun () ->
        let r = Memory.alloc (Vm.memory vm) ~bytes:(Units.gb size_gb) in
        Vm.guest_write vm r ~offset:0.0 ~bytes:(Units.gb size_gb) ~bandwidth:3.0e9;
        stats := Some (Migration.migrate vm ~dst ~mode:Migration.Postcopy ()));
    Sim.run sim;
    Option.get !stats
  in
  let s2 = run 2.0 and s16 = run 16.0 in
  check_near "same downtime" 0.05
    (Time.to_sec_f s2.Migration.downtime)
    (Time.to_sec_f s16.Migration.downtime);
  Alcotest.(check bool) "duration still scales with footprint" true
    Time.(s16.Migration.duration > s2.Migration.duration);
  Alcotest.(check bool) "each page moves once" true
    (s16.Migration.transferred_bytes < Units.gb 20.0)

let test_migration_postcopy_slowdown_lifted () =
  let sim, cluster = small_cluster () in
  let vm = mk_vm cluster (Cluster.find_node cluster "ib00") in
  let dst = Cluster.find_node cluster "eth00" in
  Sim.spawn sim (fun () ->
      let r = Memory.alloc (Vm.memory vm) ~bytes:(Units.gb 4.0) in
      Vm.guest_write vm r ~offset:0.0 ~bytes:(Units.gb 4.0) ~bandwidth:3.0e9;
      Sim.spawn sim (fun () ->
          Sim.sleep (Time.sec 2);
          (* Mid-pull: remote faults are active. *)
          Alcotest.(check (float 1e-9)) "slowdown during pull"
            Migration.postcopy_fault_slowdown (Vm.compute_slowdown vm));
      ignore (Migration.migrate vm ~dst ~mode:Migration.Postcopy ());
      Alcotest.(check (float 1e-9)) "slowdown lifted" 1.0 (Vm.compute_slowdown vm));
  Sim.run sim

let test_migration_rdma_faster () =
  let run transport =
    let sim, cluster = small_cluster () in
    let vm = mk_vm cluster (Cluster.find_node cluster "ib00") in
    let dst = Cluster.find_node cluster "ib01" in
    let d = ref Time.zero in
    Sim.spawn sim (fun () ->
        Vm.pause vm;
        d := (Migration.migrate vm ~dst ~transport ()).Migration.duration);
    Sim.run sim;
    Time.to_sec_f !d
  in
  Alcotest.(check bool) "rdma sender beats tcp" true
    (run Migration.Rdma < run Migration.Tcp)

(* ------------------------------------------------------------------ *)
(* Qmp *)

let test_qmp_roundtrip () =
  let sim, cluster = small_cluster () in
  let vm = mk_vm cluster (Cluster.find_node cluster "ib00") in
  Sim.spawn sim (fun () ->
      (match Qmp.execute vm (Qmp.Query_status) with
      | Qmp.Status Vm.Running -> ()
      | r -> Alcotest.failf "unexpected response %s" (Qmp.response_to_string r));
      (match Qmp.execute vm Qmp.Stop with
      | Qmp.Ok_empty -> ()
      | r -> Alcotest.failf "unexpected response %s" (Qmp.response_to_string r));
      Alcotest.(check bool) "stopped" true (Vm.state vm = Vm.Paused);
      match Qmp.execute vm (Qmp.Device_del { tag = "nope"; noise = 1.0 }) with
      | Qmp.Error _ -> ()
      | r -> Alcotest.failf "expected error, got %s" (Qmp.response_to_string r));
  Sim.run sim

let test_qmp_parse () =
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~spec:Spec.small () in
  let ok = function Result.Ok c -> Qmp.command_to_string c | Result.Error e -> "ERR " ^ e in
  Alcotest.(check string) "device_del" "device_del vf0" (ok (Qmp.parse cluster "device_del vf0"));
  Alcotest.(check string) "device_add" "device_add vf0 04:00.0 ib"
    (ok (Qmp.parse cluster "device_add vf0 04:00.0 ib"));
  Alcotest.(check string) "migrate" "migrate eth00" (ok (Qmp.parse cluster "migrate eth00"));
  Alcotest.(check string) "stop" "stop" (ok (Qmp.parse cluster "stop"));
  Alcotest.(check bool) "unknown node" true
    (Result.is_error (Qmp.parse cluster "migrate mars"));
  Alcotest.(check bool) "garbage" true (Result.is_error (Qmp.parse cluster "frobnicate"))

(* ------------------------------------------------------------------ *)
(* Snapshot *)

let test_snapshot_save_restore () =
  let sim, cluster = small_cluster () in
  let store = Snapshot.create_store cluster in
  let vm = mk_vm cluster (Cluster.find_node cluster "ib00") in
  let restored = ref None in
  Sim.spawn sim (fun () ->
      let r = Memory.alloc (Vm.memory vm) ~bytes:(Units.gb 1.0) in
      Vm.guest_write vm r ~offset:0.0 ~bytes:(Units.gb 1.0) ~bandwidth:3.0e9;
      let snap = Snapshot.save store vm ~name:"ckpt1" in
      Alcotest.(check bool) "vm still runs after save" true (Vm.state vm = Vm.Running);
      Alcotest.(check bool) "image covers os+array" true
        (Snapshot.image_bytes snap >= Units.gb 1.0);
      let vm2 = Snapshot.restore store snap ~host:(Cluster.find_node cluster "eth00") in
      restored := Some vm2);
  Sim.run sim;
  match !restored with
  | None -> Alcotest.fail "no restore"
  | Some vm2 ->
    Alcotest.(check bool) "restored paused" true (Vm.state vm2 = Vm.Paused);
    check_near "memory image preserved" 1e8
      (Memory.nonzero_bytes (Vm.memory vm))
      (Memory.nonzero_bytes (Vm.memory vm2));
    Alcotest.(check bool) "find by name" true (Snapshot.find store ~name:"ckpt1" <> None)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "ninja_vmm"
    [
      ( "memory",
        Alcotest.test_case "counters" `Quick test_memory_counters
        :: Alcotest.test_case "free and reuse" `Quick test_memory_free_and_reuse
        :: Alcotest.test_case "out of memory" `Quick test_memory_out_of_memory
        :: qsuite
             [
               memory_invariants_prop; memory_model_prop;
               memory_residency_differential_prop;
             ] );
      ( "vm",
        [
          Alcotest.test_case "boot state" `Quick test_vm_boot_state;
          Alcotest.test_case "compute timing" `Quick test_vm_compute_timing;
          Alcotest.test_case "pause gates compute" `Quick test_vm_pause_gates_compute;
          Alcotest.test_case "guest write" `Quick test_vm_guest_write_dirty_and_timing;
          Alcotest.test_case "overcommit" `Quick test_vm_overcommit_two_vms;
          Alcotest.test_case "too big for host" `Quick test_vm_too_big_for_host;
        ] );
      ( "hotplug",
        [
          Alcotest.test_case "add/del timing" `Quick test_hotplug_add_del_timing;
          Alcotest.test_case "noise factor" `Quick test_hotplug_noise_factor;
          Alcotest.test_case "no backing port" `Quick test_hotplug_no_backing_port;
          Alcotest.test_case "hooks fire" `Quick test_hotplug_hooks_fire;
        ] );
      ( "migration",
        [
          Alcotest.test_case "refuses bypass" `Quick test_migration_refuses_bypass;
          Alcotest.test_case "frozen guest duration" `Quick test_migration_frozen_guest_duration;
          Alcotest.test_case "self migration" `Quick test_migration_self;
          Alcotest.test_case "live dirtier costs more" `Quick test_migration_live_dirtier_costs_more;
          Alcotest.test_case "resumes running guest" `Quick test_migration_resumes_running_guest;
          Alcotest.test_case "postcopy constant downtime" `Quick
            test_migration_postcopy_downtime_constant;
          Alcotest.test_case "postcopy slowdown lifted" `Quick
            test_migration_postcopy_slowdown_lifted;
          Alcotest.test_case "rdma faster" `Quick test_migration_rdma_faster;
        ] );
      ( "qmp",
        [
          Alcotest.test_case "roundtrip" `Quick test_qmp_roundtrip;
          Alcotest.test_case "parse" `Quick test_qmp_parse;
        ] );
      ("snapshot", [ Alcotest.test_case "save/restore" `Quick test_snapshot_save_restore ]);
    ]
