(* Tests for the experiment harness: every reproduced table/figure runs in
   quick mode, produces well-formed tables, and matches the paper's shape
   claims (who wins, what is constant, what scales). All runs go through
   an explicit Run_ctx; the registry tests pin the determinism guarantee
   the parallel sweep runner relies on. *)

open Ninja_engine
open Ninja_experiments

(* A fresh default context per use keeps tests independent. *)
let rc = Run_ctx.default

let cell table r c = List.nth (List.nth (Ninja_metrics.Table.rows table) r) c

let float_cell table r c =
  (* Cells may look like "3.92" or "29.5 (53.7)". *)
  Scanf.sscanf (cell table r c) "%f" Fun.id

let test_registry_complete () =
  Alcotest.(check (list string)) "all experiments present"
    [
      "table1"; "table2"; "fig6"; "fig7"; "fig8";
      "ablation-bypass"; "ablation-rdma"; "ablation-quiesce"; "ablation-postcopy";
      "postcopy"; "evacuation"; "scalability"; "controlplane"; "placement"; "power";
    ]
    Registry.names;
  Alcotest.(check bool) "find" true (Registry.find "fig6" <> None);
  Alcotest.(check bool) "find missing" true (Registry.find "fig9" = None)

let test_table1_static () =
  match Exp_table1.run () with
  | [ spec; model ] ->
    Alcotest.(check int) "9 spec rows" 9 (List.length (Ninja_metrics.Table.rows spec));
    Alcotest.(check bool) "model rows present" true
      (List.length (Ninja_metrics.Table.rows model) >= 8)
  | _ -> Alcotest.fail "expected two tables"

let test_table2_matches_paper () =
  match Exp_table2.run rc with
  | [ table ] ->
    let rows = Ninja_metrics.Table.rows table in
    Alcotest.(check int) "four combos" 4 (List.length rows);
    List.iteri
      (fun i combo ->
        let paper_h = Paper_data.table2_hotplug combo in
        let ours_h = float_cell table i 2 in
        let paper_l = Paper_data.table2_linkup combo in
        let ours_l = float_cell table i 4 in
        if Float.abs (paper_h -. ours_h) > 0.15 then
          Alcotest.failf "%s hotplug: paper %.2f vs ours %.2f" (Paper_data.combo_name combo)
            paper_h ours_h;
        if Float.abs (paper_l -. ours_l) > 0.5 then
          Alcotest.failf "%s linkup: paper %.2f vs ours %.2f" (Paper_data.combo_name combo)
            paper_l ours_l)
      Paper_data.combos
  | _ -> Alcotest.fail "expected one table"

let test_fig6_shape () =
  let r2 = Exp_fig6.measure rc ~size_gb:2.0 in
  let r16 = Exp_fig6.measure rc ~size_gb:16.0 in
  (* Migration depends on the footprint... *)
  Alcotest.(check bool) "migration grows with footprint" true
    (r16.Exp_fig6.migration > r2.Exp_fig6.migration);
  (* ...but not proportionally (constant traversal + zero-page scan). *)
  Alcotest.(check bool) "sub-proportional" true
    (r16.Exp_fig6.migration /. r2.Exp_fig6.migration < 8.0 /. 2.0);
  (* Hotplug and link-up are size-independent. *)
  Alcotest.(check bool) "hotplug constant" true
    (Float.abs (r16.Exp_fig6.hotplug -. r2.Exp_fig6.hotplug) < 0.5);
  Alcotest.(check bool) "linkup constant ~30s" true
    (Float.abs (r16.Exp_fig6.linkup -. 29.9) < 1.0
    && Float.abs (r2.Exp_fig6.linkup -. 29.9) < 1.0);
  (* Hotplug is ~3x the Table II self-migration value (migration noise). *)
  Alcotest.(check bool) "migration noise ~3x" true
    (r2.Exp_fig6.hotplug > 2.5 *. 3.88 && r2.Exp_fig6.hotplug < 4.0 *. 3.88)

let test_fig7_claims () =
  (* Quick mode: class C at 4 ranks; the structural claims must hold. *)
  let rows = List.map (Exp_fig7.measure rc) Ninja_workloads.Npb.all in
  List.iter
    (fun r ->
      (* Proposed = baseline + overhead; overhead within sane bounds. *)
      let overhead = r.Exp_fig7.proposed -. r.Exp_fig7.baseline in
      if overhead < 30.0 || overhead > 120.0 then
        Alcotest.failf "%s: odd overhead %.1f" r.Exp_fig7.kernel overhead;
      Alcotest.(check bool) "linkup constant" true (Float.abs (r.Exp_fig7.linkup -. 29.9) < 1.0))
    rows;
  (* Migration time tracks the per-VM footprint: FT > BT > LU > CG. *)
  let m k = (List.find (fun r -> r.Exp_fig7.kernel = k) rows).Exp_fig7.migration in
  Alcotest.(check bool) "FT largest" true (m "FT" > m "BT" && m "BT" > m "LU" && m "LU" > m "CG")

let test_fig8_phases () =
  let rows = Exp_fig8.measure rc ~procs_per_vm:1 in
  Alcotest.(check int) "40 steps" 40 (List.length rows);
  let mean phase exclude =
    let xs =
      rows
      |> List.filter (fun r -> r.Exp_fig8.phase = phase && not (List.mem r.Exp_fig8.step exclude))
      |> List.map (fun r -> r.Exp_fig8.elapsed)
    in
    Ninja_metrics.Stats.mean xs
  in
  let ib = mean "4 hosts (IB)" [ 21 ] in
  let tcp2 = mean "2 hosts (TCP)" [ 11 ] in
  let tcp4 = mean "4 hosts (TCP)" [ 31 ] in
  (* Interconnect ordering: IB fastest; consolidated TCP slowest. *)
  Alcotest.(check bool) "IB fastest" true (ib < tcp4);
  Alcotest.(check bool) "consolidation costs" true (tcp2 > tcp4);
  (* Migration steps carry visible overhead. *)
  List.iter
    (fun step ->
      let r = List.find (fun r -> r.Exp_fig8.step = step) rows in
      Alcotest.(check bool) "overhead recorded" true (r.Exp_fig8.overhead > 5.0);
      Alcotest.(check bool) "spike visible" true (r.Exp_fig8.elapsed > 2.0 *. ib))
    [ 11; 21; 31 ]

let test_fig8_more_procs_faster_on_ib () =
  (* Paper: 8 procs/VM beats 1 proc/VM except under consolidation. *)
  let r1 = Exp_fig8.measure rc ~procs_per_vm:1 in
  let r8 = Exp_fig8.measure rc ~procs_per_vm:8 in
  let mean rows phase exclude =
    rows
    |> List.filter (fun r -> r.Exp_fig8.phase = phase && not (List.mem r.Exp_fig8.step exclude))
    |> List.map (fun r -> r.Exp_fig8.elapsed)
    |> Ninja_metrics.Stats.mean
  in
  Alcotest.(check bool) "8 procs faster on IB" true
    (mean r8 "4 hosts (IB)" [ 21 ] < mean r1 "4 hosts (IB)" [ 21 ]);
  (* The consolidated phase pays CPU over-commit relative to spread TCP. *)
  Alcotest.(check bool) "8b consolidation contention" true
    (mean r8 "2 hosts (TCP)" [ 11 ] > 1.5 *. mean r8 "4 hosts (TCP)" [ 31 ])

let test_ablation_bypass_ordering () =
  match Exp_ablation.bypass rc with
  | [ table ] ->
    let tp r = float_cell table r 1 in
    let ft r = float_cell table r 3 in
    Alcotest.(check bool) "throughput: ib > virtio > emulated" true
      (tp 0 > tp 1 && tp 1 > tp 2);
    Alcotest.(check bool) "FT time: ib < virtio < emulated" true (ft 0 < ft 1 && ft 1 < ft 2)
  | _ -> Alcotest.fail "expected one table"

let test_ablation_rdma_speedup () =
  match Exp_ablation.rdma_migration rc with
  | [ table ] ->
    let speedup = float_cell table 0 3 in
    Alcotest.(check bool) "rdma sender 2-3x" true (speedup > 1.5 && speedup < 4.0)
  | _ -> Alcotest.fail "expected one table"

let test_ablation_postcopy_tradeoff () =
  match Exp_ablation.postcopy rc with
  | [ table ] ->
    let pre_bytes = float_cell table 0 3 and post_bytes = float_cell table 1 3 in
    let pre_dur = float_cell table 0 1 and post_dur = float_cell table 1 1 in
    let pre_work = float_cell table 0 4 and post_work = float_cell table 1 4 in
    Alcotest.(check bool) "postcopy sends each page once" true (post_bytes < 0.5 *. pre_bytes);
    Alcotest.(check bool) "postcopy migration shorter" true (post_dur < pre_dur);
    Alcotest.(check bool) "but the guest pays fault slowdown" true (post_work > pre_work)
  | _ -> Alcotest.fail "expected one table"

let test_postcopy_experiment_claims () =
  (* The acceptance scenario for the postcopy experiment: on every
     topology — including the oversubscribed leaf-spine where precopy
     burns its round budget against the dirtying guest — postcopy's
     downtime (the constant hot-set push) is strictly below precopy's
     residual stop-and-copy, and the drain actually happened as pulls. *)
  match Exp_postcopy.run rc with
  | [ table ] ->
    let rows = Ninja_metrics.Table.rows table in
    Alcotest.(check int) "quick entries" 2 (List.length rows);
    List.iteri
      (fun i _ ->
        let pre = float_cell table i 1 and post = float_cell table i 2 in
        Alcotest.(check bool)
          (Printf.sprintf "row %d: postcopy downtime strictly below precopy" i)
          true (post < pre);
        Alcotest.(check bool)
          (Printf.sprintf "row %d: drain ran as pulls" i)
          true
          (float_cell table i 6 > 0.0))
      rows
  | _ -> Alcotest.fail "expected one table"

let test_evacuation_grouped_beats_sequential () =
  (* The acceptance scenario: multi-VM evacuation over one shared uplink.
     Grouped waves must finish strictly sooner than the serial chain, with
     the same number of steps and no extra downtime blowup. *)
  let seq = Exp_evacuation.measure rc ~n_vms:4 ~strategy:Ninja_planner.Solver.sequential () in
  let grp = Exp_evacuation.measure rc ~n_vms:4 ~strategy:Ninja_planner.Solver.grouped () in
  Alcotest.(check int) "same steps" seq.Exp_evacuation.steps grp.Exp_evacuation.steps;
  Alcotest.(check int) "one step per VM" 4 grp.Exp_evacuation.steps;
  Alcotest.(check bool) "grouped strictly faster" true
    (grp.Exp_evacuation.makespan < seq.Exp_evacuation.makespan);
  (* The 10 Gb/s uplink fits two sender-bound streams: the grouped plan
     should roughly halve the serial makespan, not just shave it. *)
  Alcotest.(check bool) "grouped ~2x faster" true
    (grp.Exp_evacuation.makespan < 0.7 *. seq.Exp_evacuation.makespan);
  Alcotest.(check bool) "total includes makespan" true
    (grp.Exp_evacuation.total >= grp.Exp_evacuation.makespan)

let test_placement_swap_converges () =
  (* The PR-8 acceptance scenario: under a skewed (elephant-flow) traffic
     matrix the destination-swap strategy must land on a strictly cheaper
     communication placement than the migration-time baseline, which
     carries the same churn but never re-aims a destination. *)
  let pattern =
    Ninja_workloads.Traffic.Skewed
      { elephants = 2; rate = Ninja_workloads.Traffic.default_rate; factor = 16.0 }
  in
  let measure strategy =
    Exp_placement.measure rc ~pattern ~strategy ~vms_per_tenant:3 ~hosts_per_rack:4 ()
  in
  let base = measure Ninja_planner.Solver.grouped in
  let swap = measure Ninja_planner.Solver.swap in
  Alcotest.(check bool) "identical starting placement" true
    (base.Exp_placement.cost_start = swap.Exp_placement.cost_start);
  Alcotest.(check bool) "baseline proposes no swaps" true
    (base.Exp_placement.proposed = 0);
  Alcotest.(check bool) "swap strategy applies swaps" true
    (swap.Exp_placement.applied > 0);
  Alcotest.(check bool)
    (Printf.sprintf "swap converges lower (%.4f < %.4f)"
       swap.Exp_placement.cost_end base.Exp_placement.cost_end)
    true
    (swap.Exp_placement.cost_end < base.Exp_placement.cost_end);
  Alcotest.(check bool) "swap improves on its own start" true
    (swap.Exp_placement.cost_end < swap.Exp_placement.cost_start)

let test_scalability_congestion () =
  (* Below the uplink's capacity migrations run at the sender rate; well
     above it they stretch while hotplug stays constant. *)
  let r1 = Exp_scalability.measure rc ~n_vms:1 ~uplink_gbps:10.0 in
  let r8 = Exp_scalability.measure rc ~n_vms:8 ~uplink_gbps:10.0 in
  Alcotest.(check bool) "8 VMs congested" true
    (r8.Exp_scalability.migration > 1.3 *. r1.Exp_scalability.migration);
  Alcotest.(check bool) "per-VM rate drops" true
    (r8.Exp_scalability.per_vm_rate < r1.Exp_scalability.per_vm_rate);
  Alcotest.(check (float 0.2)) "hotplug unaffected" r1.Exp_scalability.hotplug
    r8.Exp_scalability.hotplug

let test_power_consolidation () =
  (* Consolidation saves energy for the under-utilised job and costs
     energy for the CPU-bound one (you cannot power-save a busy host). *)
  (* Full mode: the iteration counts the claims were calibrated against. *)
  let rc = Run_ctx.full in
  let spread_idle = Exp_power.measure rc ~consolidated:false ~busy:false in
  let cons_idle = Exp_power.measure rc ~consolidated:true ~busy:false in
  let spread_busy = Exp_power.measure rc ~consolidated:false ~busy:true in
  let cons_busy = Exp_power.measure rc ~consolidated:true ~busy:true in
  Alcotest.(check bool) "under-utilised: consolidation saves energy" true
    (cons_idle.Exp_power.energy_kj < spread_idle.Exp_power.energy_kj);
  Alcotest.(check bool) "CPU-bound: consolidation wastes energy" true
    (cons_busy.Exp_power.energy_kj > spread_busy.Exp_power.energy_kj);
  Alcotest.(check bool) "CPU-bound: consolidation ~2x slower" true
    (cons_busy.Exp_power.duration > 1.7 *. spread_busy.Exp_power.duration)

let test_ablation_quiesce_contrast () =
  match Exp_ablation.quiesce rc with
  | [ table ] ->
    let frozen_bytes = float_cell table 0 3 and live_bytes = float_cell table 1 3 in
    let frozen_passes = float_cell table 0 2 and live_passes = float_cell table 1 2 in
    Alcotest.(check bool) "live sends more" true (live_bytes > 1.5 *. frozen_bytes);
    Alcotest.(check bool) "live needs more passes" true (live_passes > frozen_passes)
  | _ -> Alcotest.fail "expected one table"

(* --- Registry under the explicit run-context (refactor regressions) --- *)

let render tables =
  String.concat "\n--\n" (List.map Ninja_metrics.Table.to_csv tables)

let test_registry_names_unique () =
  let sorted = List.sort_uniq String.compare Registry.names in
  Alcotest.(check int) "names unique" (List.length Registry.names) (List.length sorted)

(* Every registered experiment completes in Quick mode under a fresh
   context and yields at least one table with rows; the metrics sink sees
   one CSV chunk per table. *)
let test_registry_all_complete () =
  List.iter
    (fun e ->
      let chunks = ref 0 in
      let ctx = Run_ctx.(with_sinks ~metrics:(fun _ -> incr chunks) default) in
      let tables = Registry.run_entry ctx e in
      if tables = [] then Alcotest.failf "%s produced no tables" e.Registry.name;
      List.iter
        (fun t ->
          if Ninja_metrics.Table.rows t = [] then
            Alcotest.failf "%s produced an empty table" e.Registry.name)
        tables;
      Alcotest.(check int)
        (e.Registry.name ^ " metrics chunks")
        (List.length tables) !chunks)
    Registry.all

(* Two runs under equal contexts are byte-identical — the determinism the
   parallel sweep runner's output guarantee rests on. *)
let test_registry_deterministic () =
  List.iter
    (fun name ->
      let e = Option.get (Registry.find name) in
      let once () = render (e.Registry.run (Run_ctx.make ~seed:7L ())) in
      Alcotest.(check string) (name ^ " deterministic") (once ()) (once ()))
    [ "table2"; "evacuation" ]

(* A pooled context must produce byte-identical tables to a serial one,
   whatever the completion order of the grid points. *)
let test_registry_parallel_identical () =
  let e = Option.get (Registry.find "fig6") in
  let serial = render (e.Registry.run rc) in
  let parallel =
    Pool.with_pool ~size:4 (fun pool -> render (e.Registry.run (Run_ctx.make ~pool ())))
  in
  Alcotest.(check string) "fig6 -j4 == -j1" serial parallel

(* A seed change must actually reach the simulations: the context's seed
   initialises the PRNG of every simulation [fresh] creates. (Fault-free
   experiment tables are deliberately seed-insensitive — nothing on those
   paths draws — so this is asserted at the PRNG stream level.) *)
let test_registry_seed_threads () =
  let draw seed =
    let env = Exp_common.fresh (Run_ctx.make ~seed ()) in
    Prng.next_int64 (Sim.prng env.Exp_common.sim)
  in
  Alcotest.(check bool) "same seed, same stream" true (draw 42L = draw 42L);
  Alcotest.(check bool) "seed 42 vs 43 differ" true (draw 42L <> draw 43L)

let () =
  Alcotest.run "ninja_experiments"
    [
      ( "experiments",
        [
          Alcotest.test_case "registry" `Quick test_registry_complete;
          Alcotest.test_case "table1" `Quick test_table1_static;
          Alcotest.test_case "table2 vs paper" `Quick test_table2_matches_paper;
          Alcotest.test_case "fig6 shape" `Quick test_fig6_shape;
          Alcotest.test_case "fig7 claims" `Slow test_fig7_claims;
          Alcotest.test_case "fig8 phases" `Quick test_fig8_phases;
          Alcotest.test_case "fig8 procs/VM" `Quick test_fig8_more_procs_faster_on_ib;
          Alcotest.test_case "ablation bypass" `Quick test_ablation_bypass_ordering;
          Alcotest.test_case "ablation rdma" `Quick test_ablation_rdma_speedup;
          Alcotest.test_case "ablation quiesce" `Quick test_ablation_quiesce_contrast;
          Alcotest.test_case "ablation postcopy" `Quick test_ablation_postcopy_tradeoff;
          Alcotest.test_case "postcopy vs precopy across topologies" `Quick
            test_postcopy_experiment_claims;
          Alcotest.test_case "evacuation planner" `Quick test_evacuation_grouped_beats_sequential;
          Alcotest.test_case "placement swap converges" `Quick test_placement_swap_converges;
          Alcotest.test_case "scalability congestion" `Quick test_scalability_congestion;
          Alcotest.test_case "power consolidation" `Slow test_power_consolidation;
        ] );
      ( "registry-context",
        [
          Alcotest.test_case "names unique" `Quick test_registry_names_unique;
          Alcotest.test_case "all complete under fresh ctx" `Slow test_registry_all_complete;
          Alcotest.test_case "same seed, same tables" `Quick test_registry_deterministic;
          Alcotest.test_case "pooled == serial" `Quick test_registry_parallel_identical;
          Alcotest.test_case "seed threads through" `Quick test_registry_seed_threads;
        ] );
    ]
