.PHONY: all build test check fmt clean

all: build

build:
	dune build @all

test:
	dune runtest

# The gate CI runs: everything compiles and the full suite passes.
check: build test

# Advisory: requires ocamlformat, which not every dev box has.
fmt:
	dune fmt

clean:
	dune clean
